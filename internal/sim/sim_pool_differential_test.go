package sim_test

// Differential test pinning the RunPool equivalence contract: for any
// program and configuration, pool.Run must be observably bit-identical to a
// fresh sim.Run — same Result, same event stream, same detector verdicts.
// The pool is deliberately SHARED across every kernel and variant, so each
// run recycles a runtime shaped by a completely different program (the
// hardest case for slot/arena reuse).

import (
	"reflect"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// diffOne runs prog once fresh and once on the pool under identical
// configurations and fails the test on any observable divergence.
func diffOne(t *testing.T, pool *sim.RunPool, label string, cfg sim.Config, prog sim.Program,
	injFor func() sim.Injector) {
	t.Helper()

	run := func(pooled bool) (*sim.Result, *sim.TraceCollector, *race.Detector, *vet.Monitor) {
		tr := &sim.TraceCollector{}
		det := race.New(-1)
		vt := vet.New()
		c := cfg
		c.Sinks = []event.Sink{tr, det, vt}
		if injFor != nil {
			c.Injector = injFor()
		}
		if pooled {
			return pool.Run(c, prog).Clone(), tr, det, vt
		}
		return sim.Run(c, prog), tr, det, vt
	}

	fres, ftr, fdet, fvet := run(false)
	pres, ptr, pdet, pvet := run(true)

	if !reflect.DeepEqual(fres, pres) {
		t.Errorf("%s: Result differs\n  fresh:  %+v\n  pooled: %+v", label, fres, pres)
	}
	fe, pe := ftr.Events(), ptr.Events()
	if len(fe) != len(pe) {
		t.Fatalf("%s: trace length differs fresh=%d pooled=%d", label, len(fe), len(pe))
	}
	for i := range fe {
		if fe[i] != pe[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  fresh:  %s\n  pooled: %s",
				label, i, fe[i], pe[i])
		}
	}
	fr, pr := fdet.Reports(), pdet.Reports()
	if len(fr) != len(pr) {
		t.Fatalf("%s: race report count differs fresh=%d pooled=%d", label, len(fr), len(pr))
	}
	for i := range fr {
		if fr[i].String() != pr[i].String() {
			t.Errorf("%s: race report %d differs:\n  fresh:  %s\n  pooled: %s",
				label, i, fr[i], pr[i])
		}
	}
	fv, pv := fvet.Violations(), pvet.Violations()
	if len(fv) != len(pv) {
		t.Fatalf("%s: vet violation count differs fresh=%d pooled=%d", label, len(fv), len(pv))
	}
	for i := range fv {
		if fv[i].String() != pv[i].String() {
			t.Errorf("%s: vet violation %d differs:\n  fresh:  %s\n  pooled: %s",
				label, i, fv[i], pv[i])
		}
	}
}

// TestPooledMatchesFreshOnAllKernels sweeps every kernel, both variants,
// several seeds, through ONE shared pool interleaved with fresh runs.
func TestPooledMatchesFreshOnAllKernels(t *testing.T) {
	pool := sim.NewRunPool()
	defer pool.Close()
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, k := range kernels.All() {
		for _, v := range []struct {
			name string
			prog sim.Program
		}{{"buggy", k.Buggy}, {"fixed", k.Fixed}} {
			for _, seed := range seeds {
				label := k.ID + "/" + v.name
				diffOne(t, pool, label, k.Config(seed), v.prog, nil)
			}
		}
	}
}

// TestPooledMatchesFreshUnderBenignInjection repeats the sweep with a
// benign (yield-only) fault injector — injected scheduling perturbations
// must land identically on recycled and fresh runtimes.
func TestPooledMatchesFreshUnderBenignInjection(t *testing.T) {
	pool := sim.NewRunPool()
	defer pool.Close()
	ks := kernels.All()
	if testing.Short() {
		ks = ks[:8]
	}
	for run, k := range ks {
		opts := inject.Options{Seed: 11, Budget: 6}
		injFor := func() sim.Injector { return inject.ForRun(opts, run) }
		diffOne(t, pool, k.ID+"/buggy+inject", k.Config(3), k.Buggy, injFor)
		diffOne(t, pool, k.ID+"/fixed+inject", k.Config(3), k.Fixed, injFor)
	}
}

// TestPooledResultCloneSurvivesRecycling pins the Clone contract: a cloned
// Result must stay intact after the pool reuses its runtime.
func TestPooledResultCloneSurvivesRecycling(t *testing.T) {
	pool := sim.NewRunPool()
	defer pool.Close()
	k := kernels.All()[0]
	first := pool.Run(k.Config(1), k.Buggy).Clone()
	want := pool.Run(k.Config(1), k.Buggy).Clone() // deterministic: same seed
	for _, other := range kernels.All()[1:4] {
		pool.Run(other.Config(2), other.Fixed)
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("cloned Result mutated by later pooled runs:\n  got:  %+v\n  want: %+v", first, want)
	}
}
