package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Channel semantics implemented here follow Section 2.3 of the paper:
//
//   - send/receive on an unbuffered channel blocks until the rendezvous;
//   - send on a buffered channel blocks only when the buffer is full;
//   - send or receive on a nil channel blocks the goroutine forever;
//   - send on a closed channel and closing a closed (or nil) channel panic;
//   - receive on a closed channel drains the buffer then yields zero, false.

const (
	dirSend = iota
	dirRecv
)

// waiter represents a goroutine parked on a channel operation, either a
// direct send/receive or one case of a blocked select.
type waiter struct {
	g       *G
	dir     int
	val     any   // value being sent (dir == dirSend)
	vcSnap  hb.VC // sender's clock at enqueue time
	sel     *selectOp
	caseIdx int
	// Filled by the party completing the operation:
	recvVal  any
	recvOK   bool
	panicMsg string
}

// claimed reports whether this waiter can no longer be matched because its
// select already completed through another case.
func (w *waiter) claimed() bool { return w.sel != nil && w.sel.done }

// claim marks the waiter's select as completed via this case.
func (w *waiter) claim() {
	if w.sel != nil {
		w.sel.done = true
		w.sel.chosen = w.caseIdx
	}
}

type bufItem struct {
	val any
	vc  hb.VC
}

// chanCore is the untyped channel implementation shared by Chan[V] and the
// context/timer/pipe libraries built on top of it.
type chanCore struct {
	rt     *runtime
	id     int
	autoID int
	name   string
	cap    int
	buf    []bufItem
	closed bool
	// closeVC is the closing goroutine's clock; receivers observing the
	// close acquire it.
	closeVC hb.VC
	sendq   []*waiter
	recvq   []*waiter
}

func (rt *runtime) newChanCore(name string, capacity int) *chanCore {
	rt.nextChanID++
	id := rt.nextChanID
	c, recycled := arenaGet[chanCore](rt)
	if recycled {
		for i := range c.buf {
			c.buf[i].vc.Free() // leftover buffered snapshots are solely ours
			c.buf[i] = bufItem{}
		}
		c.buf = c.buf[:0]
		c.closed = false
		c.closeVC.Free()
		c.sendq = c.sendq[:0]
		c.recvq = c.recvq[:0]
	}
	if name == "" {
		if !recycled || c.autoID != id {
			c.name = fmt.Sprintf("chan#%d", id)
		}
		c.autoID = id
	} else {
		c.name = name
		c.autoID = 0
	}
	c.rt, c.id, c.cap = rt, id, capacity
	return c
}

// dequeue pops the first live waiter from q, skipping claimed select cases.
// Pops copy down rather than re-slice from the front, so the queue's backing
// keeps its capacity for the next enqueue (and for pooled reuse).
func dequeue(q *[]*waiter) *waiter {
	for len(*q) > 0 {
		w := (*q)[0]
		n := copy(*q, (*q)[1:])
		(*q)[n] = nil
		*q = (*q)[:n]
		if w.claimed() {
			continue
		}
		return w
	}
	return nil
}

// liveWaiter reports whether q holds at least one unclaimed waiter.
func liveWaiter(q []*waiter) bool {
	for _, w := range q {
		if !w.claimed() {
			return true
		}
	}
	return false
}

// sendReady reports whether a send would complete (or panic) immediately.
func (c *chanCore) sendReady() bool {
	if c == nil {
		return false
	}
	return c.closed || len(c.buf) < c.cap || liveWaiter(c.recvq)
}

// recvReady reports whether a receive would complete immediately.
func (c *chanCore) recvReady() bool {
	if c == nil {
		return false
	}
	return c.closed || len(c.buf) > 0 || liveWaiter(c.sendq)
}

// completeSend performs a send that is known to be ready. t is the sender.
func (c *chanCore) completeSend(t *T, v any) {
	if c.closed {
		t.Panicf("send on closed channel %s", c.name)
	}
	if w := dequeue(&c.recvq); w != nil {
		// Direct handoff to a parked receiver (or select case).
		w.claim()
		w.recvVal, w.recvOK = v, true
		w.g.vc.Join(t.g.vc)
		if c.cap == 0 {
			// An unbuffered rendezvous synchronizes both ways.
			t.g.vc.Join(w.g.vc)
			w.g.tick()
		}
		t.g.tick()
		c.rt.unblock(w.g)
		if c.rt.wants(event.ChanSendDone) {
			// Aux carries the receiver's goroutine id; sinks that need the
			// "handoff to gN" rendering derive it from Aux.
			c.rt.emit(t.g, event.Event{Kind: event.ChanSendDone, Obj: c.name, ObjID: c.id, Aux: w.g.id})
		}
		return
	}
	// Buffer space is available.
	c.buf = append(c.buf, bufItem{val: v, vc: t.g.vc.Clone()})
	t.g.tick()
	if c.rt.wants(event.ChanSendDone) {
		c.rt.emit(t.g, event.Event{Kind: event.ChanSendDone, Obj: c.name, ObjID: c.id, Detail: "buffered"})
	}
}

// completeRecv performs a receive that is known to be ready.
func (c *chanCore) completeRecv(t *T) (any, bool) {
	if len(c.buf) > 0 {
		item := c.buf[0]
		n := copy(c.buf, c.buf[1:])
		c.buf[n] = bufItem{}
		c.buf = c.buf[:n]
		t.g.vc.Join(item.vc)
		item.vc.Free() // the dequeued snapshot has no other owner
		// A sender may be parked waiting for buffer space; admit it.
		if w := dequeue(&c.sendq); w != nil {
			w.claim()
			c.buf = append(c.buf, bufItem{val: w.val, vc: w.vcSnap})
			c.rt.unblock(w.g)
		}
		if c.rt.wants(event.ChanRecvDone) {
			c.rt.emit(t.g, event.Event{Kind: event.ChanRecvDone, Obj: c.name, ObjID: c.id, Detail: "buffered"})
		}
		return item.val, true
	}
	if w := dequeue(&c.sendq); w != nil {
		// Unbuffered rendezvous with a parked sender.
		w.claim()
		t.g.vc.Join(w.vcSnap)
		w.vcSnap.Free() // rendezvous consumed the parked sender's snapshot
		w.g.vc.Join(t.g.vc)
		t.g.tick()
		w.g.tick()
		c.rt.unblock(w.g)
		if c.rt.wants(event.ChanRecvDone) {
			// Aux carries the matched sender's goroutine id ("rendezvous
			// with gN" in trace renderings).
			c.rt.emit(t.g, event.Event{Kind: event.ChanRecvDone, Obj: c.name, ObjID: c.id, Aux: w.g.id})
		}
		return w.val, true
	}
	// Closed and drained.
	t.g.vc.Join(c.closeVC)
	if c.rt.wants(event.ChanRecvDone) {
		c.rt.emit(t.g, event.Event{Kind: event.ChanRecvDone, Obj: c.name, ObjID: c.id, Detail: "closed"})
	}
	return nil, false
}

// send implements the blocking send.
func (c *chanCore) send(t *T, v any) {
	t.yield()
	if c == nil {
		t.touch(ObjChan, 0, true)
		t.emitObj(event.ChanNil, "nil channel (send)")
		t.blockForever(BlockChanSend, "nil channel")
	}
	t.touch(ObjChan, c.id, true)
	if t.fault(SiteChanSend, c.name) == FaultClose {
		// Injected close-on-error-path: the channel is closed out from
		// under the send, which is about to panic.
		c.closeFromRuntime(t.g.vc)
	}
	if c.closed {
		t.emitObj(event.ChanSendClosed, c.name)
	} else if t.rt.wants(event.ChanSend) {
		t.rt.emit(t.g, event.Event{Kind: event.ChanSend, Obj: c.name, ObjID: c.id})
	}
	if c.sendReady() {
		c.completeSend(t, v)
		return
	}
	w := &waiter{g: t.g, dir: dirSend, val: v, vcSnap: t.g.vc.Clone()}
	c.sendq = append(c.sendq, w)
	t.block(BlockChanSend, c.name)
	if w.panicMsg != "" {
		t.Panicf("%s", w.panicMsg)
	}
	// A receiver matched us; it already did the clock transfer.
	t.g.tick()
}

// recv implements the blocking receive.
func (c *chanCore) recv(t *T) (any, bool) {
	t.yield()
	if c == nil {
		t.touch(ObjChan, 0, true)
		t.emitObj(event.ChanNil, "nil channel (recv)")
		t.blockForever(BlockChanRecv, "nil channel")
	}
	t.touch(ObjChan, c.id, true)
	if t.fault(SiteChanRecv, c.name) == FaultClose {
		// Injected close: the receive observes it (drains the buffer,
		// then yields zero, false).
		c.closeFromRuntime(t.g.vc)
	}
	if t.rt.wants(event.ChanRecv) {
		t.rt.emit(t.g, event.Event{Kind: event.ChanRecv, Obj: c.name, ObjID: c.id})
	}
	if c.recvReady() {
		return c.completeRecv(t)
	}
	w := &waiter{g: t.g, dir: dirRecv}
	c.recvq = append(c.recvq, w)
	t.block(BlockChanRecv, c.name)
	return w.recvVal, w.recvOK
}

// close implements the close builtin.
func (c *chanCore) close(t *T) {
	t.yield()
	if c == nil {
		t.touch(ObjChan, 0, true)
		t.emitObj(event.ChanNil, "nil channel (close)")
		t.Panicf("close of nil channel")
	}
	t.touch(ObjChan, c.id, true)
	t.fault(SiteChanClose, c.name)
	if c.closed {
		t.emitObj(event.ChanCloseClosed, c.name)
		t.Panicf("close of closed channel %s", c.name)
	}
	// One merged event: the legacy monitor saw the closing goroutine's
	// pre-tick clock, and the trace line carries no clock, so emitting here
	// (before the close takes effect) serves both.
	if t.rt.wants(event.ChanClose) {
		t.rt.emit(t.g, event.Event{Kind: event.ChanClose, Obj: c.name, ObjID: c.id})
	}
	c.closed = true
	c.closeVC = t.g.vc.Clone()
	t.g.tick()
	// Every parked receiver observes the close.
	for {
		w := dequeue(&c.recvq)
		if w == nil {
			break
		}
		w.claim()
		w.recvVal, w.recvOK = nil, false
		w.g.vc.Join(c.closeVC)
		c.rt.unblock(w.g)
	}
	// Parked senders panic, as in real Go.
	for {
		w := dequeue(&c.sendq)
		if w == nil {
			break
		}
		w.claim()
		w.panicMsg = fmt.Sprintf("send on closed channel %s", c.name)
		c.rt.unblock(w.g)
	}
}

// trySendFromRuntime delivers a value from scheduler context (timer fires)
// without blocking: parked receiver first, then buffer space, else dropped.
// It returns whether the value was delivered.
func (c *chanCore) trySendFromRuntime(vc hb.VC, v any) bool {
	c.rt.touchOp(ObjChan, c.id, true)
	if c.closed {
		return false
	}
	if w := dequeue(&c.recvq); w != nil {
		w.claim()
		w.recvVal, w.recvOK = v, true
		w.g.vc.Join(vc)
		c.rt.unblock(w.g)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, bufItem{val: v, vc: vc.Clone()})
		return true
	}
	return false
}

// closeFromRuntime closes the channel from scheduler context (context
// cancellation driven by a timer). Closing an already-closed channel is a
// no-op here because the runtime uses it idempotently.
func (c *chanCore) closeFromRuntime(vc hb.VC) {
	c.rt.touchOp(ObjChan, c.id, true)
	if c.closed {
		return
	}
	c.closed = true
	c.closeVC = vc.Clone()
	for {
		w := dequeue(&c.recvq)
		if w == nil {
			break
		}
		w.claim()
		w.recvVal, w.recvOK = nil, false
		w.g.vc.Join(c.closeVC)
		c.rt.unblock(w.g)
	}
	for {
		w := dequeue(&c.sendq)
		if w == nil {
			break
		}
		w.claim()
		w.panicMsg = fmt.Sprintf("send on closed channel %s", c.name)
		c.rt.unblock(w.g)
	}
}

// Chan is a typed simulated channel. The zero value behaves like a nil
// channel: sends and receives block forever, close panics.
type Chan[V any] struct {
	core *chanCore
}

// NewChan makes a channel with the given capacity (0 = unbuffered),
// mirroring make(chan V, capacity).
func NewChan[V any](t *T, capacity int) Chan[V] {
	return Chan[V]{core: t.rt.newChanCore("", capacity)}
}

// NewChanNamed makes a named channel for more readable reports.
func NewChanNamed[V any](t *T, name string, capacity int) Chan[V] {
	return Chan[V]{core: t.rt.newChanCore(name, capacity)}
}

// NilChan returns the nil channel of type V.
func NilChan[V any]() Chan[V] { return Chan[V]{} }

// IsNil reports whether the channel is nil.
func (c Chan[V]) IsNil() bool { return c.core == nil }

// Send sends v, blocking per Go channel semantics.
func (c Chan[V]) Send(t *T, v V) { c.core.send(t, v) }

// Recv receives a value; ok is false when the channel is closed and
// drained.
func (c Chan[V]) Recv(t *T) (V, bool) {
	v, ok := c.core.recv(t)
	if !ok || v == nil {
		var zero V
		return zero, ok
	}
	return v.(V), ok
}

// Close closes the channel, panicking on double close or nil channel.
func (c Chan[V]) Close(t *T) { c.core.close(t) }

// Len returns the number of buffered values.
func (c Chan[V]) Len() int {
	if c.core == nil {
		return 0
	}
	return len(c.core.buf)
}

// Cap returns the channel capacity.
func (c Chan[V]) Cap() int {
	if c.core == nil {
		return 0
	}
	return c.core.cap
}

// Name returns the channel's report name.
func (c Chan[V]) Name() string {
	if c.core == nil {
		return "nil"
	}
	return c.core.name
}
