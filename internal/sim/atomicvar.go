package sim

import (
	"fmt"

	"goconcbugs/internal/hb"
)

// AtomicInt64 models sync/atomic operations on an int64. As with Go's race
// detector, atomic operations are synchronization: they never race and they
// carry happens-before edges (each store releases, each load acquires).
type AtomicInt64 struct {
	rt   *runtime
	id   int
	name string
	val  int64
	vc   hb.VC
}

// NewAtomicInt64 creates an atomic cell.
func NewAtomicInt64(t *T, name string) *AtomicInt64 {
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("atomic#%d", t.rt.nextSyncID)
	}
	return &AtomicInt64{rt: t.rt, id: t.rt.nextSyncID, name: name, vc: hb.New()}
}

// Load atomically reads the value.
func (a *AtomicInt64) Load(t *T) int64 {
	t.yield()
	t.touch(ObjSync, a.id, false)
	t.fault(SiteAtomic, a.name)
	t.g.vc.Join(a.vc)
	return a.val
}

// Store atomically writes the value.
func (a *AtomicInt64) Store(t *T, v int64) {
	t.yield()
	t.touch(ObjSync, a.id, true)
	t.fault(SiteAtomic, a.name)
	a.vc.Join(t.g.vc)
	t.g.tick()
	a.val = v
}

// Add atomically adds delta and returns the new value.
func (a *AtomicInt64) Add(t *T, delta int64) int64 {
	t.yield()
	t.touch(ObjSync, a.id, true)
	t.fault(SiteAtomic, a.name)
	t.g.vc.Join(a.vc)
	a.vc.Join(t.g.vc)
	t.g.tick()
	a.val += delta
	return a.val
}

// CompareAndSwap performs the atomic CAS.
func (a *AtomicInt64) CompareAndSwap(t *T, old, new int64) bool {
	t.yield()
	t.touch(ObjSync, a.id, true)
	t.fault(SiteAtomic, a.name)
	t.g.vc.Join(a.vc)
	if a.val != old {
		return false
	}
	a.vc.Join(t.g.vc)
	t.g.tick()
	a.val = new
	return true
}

// Name returns the cell's report name.
func (a *AtomicInt64) Name() string { return a.name }
