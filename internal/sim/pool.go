package sim

// Run pooling: amortizing the per-run setup of the simulated runtime.
//
// Sweeps run the same program tens of thousands to millions of times with
// only the seed (or the schedule prefix) changing. A fresh Run pays for the
// whole world every time — the runtime struct, one host goroutine plus
// resume channel per simulated goroutine, every mutex/channel/variable the
// program constructs, vector-clock backings, and the Result. RunPool keeps
// all of that alive between runs and resets it instead:
//
//   - the runtime struct, its channels, scratch buffers, and seeded source
//     are reused (reset, not reallocated);
//   - goroutine slot i always maps to the same G and the same parked host
//     worker (allocG), so spawning is a field reset and the first token send
//     re-enters a warm worker loop;
//   - primitives are recycled through a construction-order arena (arenaGet):
//     the i-th primitive constructed by a run gets the i-th arena slot, so
//     deterministic re-runs of one program hit the same object (same
//     backing queues, same auto-generated name) every time;
//   - the Result and its slices are reused (finalize), valid until the next
//     Run on the pool — Clone to retain one.
//
// Everything above is guarded by the simulator's single-CPU-token
// discipline: exactly one party (the Run caller or one simulated goroutine)
// touches runtime state at any moment, so the pool needs no locks — and,
// for the same reason, a RunPool must NOT be shared between concurrent host
// goroutines. Give each sweep worker its own pool.
//
// Equivalence: a pooled run is observably identical to a fresh Run — same
// Result, same event stream, same Chooser/Injector consultation sequence —
// because every piece of state a run can observe is reset on reuse
// (sim_pool_differential_test.go pins this bit-for-bit).

// RunPool executes runs back-to-back on one recycled runtime. The zero
// value is ready to use. Not safe for concurrent use.
type RunPool struct {
	rt *runtime
}

// NewRunPool returns an empty pool. The first Run populates it.
func NewRunPool() *RunPool { return &RunPool{} }

// Run executes main under cfg exactly like the package-level Run, reusing
// the pool's runtime. The returned Result (and everything it references) is
// valid only until the next call to Run on this pool; use Result.Clone to
// retain it.
func (p *RunPool) Run(cfg Config, main Program) *Result {
	if p.rt == nil {
		p.rt = newRuntime(cfg)
		p.rt.pooled = true
	} else {
		p.rt.reset(cfg)
	}
	rt := p.rt
	rt.execute(main)
	if rt.hostPanic != nil {
		// Propagate host bugs like Run does; the pool stays usable (the
		// next reset clears the wreckage).
		hp := rt.hostPanic
		rt.hostPanic = nil
		panic(hp)
	}
	return rt.finalize()
}

// Close shuts down the pool's parked worker goroutines. The pool itself
// remains usable — the next Run simply starts from scratch — but Close must
// be called (or the pool left for the GC along with its parked workers)
// before discarding it; parked workers otherwise live as long as the
// process.
func (p *RunPool) Close() {
	if p.rt != nil {
		p.rt.releaseWorkers()
		p.rt = nil
	}
}

// arenaGet returns the next primitive slot as a *T, recycling the previous
// run's object when the slot already holds that exact type (the common case:
// deterministic programs construct the same primitives in the same order
// every run). The second result reports recycling: the caller owns the full
// reset of a recycled object's fields. On a type mismatch — or on a fresh
// runtime — the slot is (re)filled with a zero value, so partial arena
// coverage and cross-program pool reuse are both safe.
func arenaGet[T any](rt *runtime) (*T, bool) {
	i := rt.arenaNext
	rt.arenaNext++
	if i < len(rt.arena) {
		if p, ok := rt.arena[i].(*T); ok {
			return p, true
		}
		p := new(T)
		rt.arena[i] = p
		return p, false
	}
	p := new(T)
	rt.arena = append(rt.arena, p)
	return p, false
}
