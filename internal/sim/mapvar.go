package sim

import (
	"fmt"

	"goconcbugs/internal/event"
)

// MapVar models a plain Go map shared across goroutines. The real runtime
// carries a best-effort concurrent-access check that throws "fatal error:
// concurrent map writes" — a crash, not a detector report — which is how
// several of the paper's traditional data races actually manifested in
// production. The model reproduces that: a write spans a scheduling point
// with the write flag held, so a truly overlapping access from another
// goroutine hits the flag and crashes the simulated process, while accesses
// that merely race in the happens-before sense (but do not overlap) survive
// the run and are left to the race detector, exactly like real Go.
//
// Accesses are also emitted as MapRead/MapWrite events (distinct kinds from
// MemRead/MemWrite: map accesses feed the race detector but never appeared
// in the execution trace), so the race detector flags the race even on runs
// where the crash window is missed.
type MapVar[K comparable, V any] struct {
	meta    *VarMeta
	rt      *runtime
	m       map[K]V
	writing int // goroutine id holding the write window, 0 if none
	reading map[int]int
}

// NewMapVar creates an instrumented shared map.
func NewMapVar[K comparable, V any](t *T, name string) *MapVar[K, V] {
	t.rt.nextVarID++
	if name == "" {
		name = fmt.Sprintf("map#%d", t.rt.nextVarID)
	}
	return &MapVar[K, V]{
		meta:    &VarMeta{ID: t.rt.nextVarID, Name: name, CreatedBy: t.g.id},
		rt:      t.rt,
		m:       make(map[K]V),
		reading: map[int]int{},
	}
}

func (mv *MapVar[K, V]) observe(t *T, write bool) {
	kind := event.MapRead
	if write {
		kind = event.MapWrite
	}
	if t.rt.wants(kind) {
		t.rt.emit(t.g, event.Event{Kind: kind, Obj: mv.meta.Name, ObjID: mv.meta.ID, Var: mv.meta})
	}
}

// Store writes a key. The write occupies a window spanning a scheduling
// point; any overlapping access crashes, as the Go runtime would.
func (mv *MapVar[K, V]) Store(t *T, k K, v V) {
	t.yield()
	t.touch(ObjVar, mv.meta.ID, true)
	t.fault(SiteMap, mv.meta.Name)
	mv.observe(t, true)
	if mv.writing != 0 && mv.writing != t.g.id {
		t.Panicf("fatal error: concurrent map writes on %s", mv.meta.Name)
	}
	if len(mv.reading) > 0 {
		t.Panicf("fatal error: concurrent map read and map write on %s", mv.meta.Name)
	}
	mv.writing = t.g.id
	t.yield() // the write is not atomic: the window where crashes happen
	t.touch(ObjVar, mv.meta.ID, true)
	mv.writing = 0
	mv.m[k] = v
}

// Load reads a key.
func (mv *MapVar[K, V]) Load(t *T, k K) (V, bool) {
	t.yield()
	t.touch(ObjVar, mv.meta.ID, false)
	t.fault(SiteMap, mv.meta.Name)
	mv.observe(t, false)
	if mv.writing != 0 && mv.writing != t.g.id {
		t.Panicf("fatal error: concurrent map read and map write on %s", mv.meta.Name)
	}
	mv.reading[t.g.id]++
	t.yield()
	t.touch(ObjVar, mv.meta.ID, false)
	mv.reading[t.g.id]--
	if mv.reading[t.g.id] == 0 {
		delete(mv.reading, t.g.id)
	}
	v, ok := mv.m[k]
	return v, ok
}

// Delete removes a key, with the same write-window semantics as Store.
func (mv *MapVar[K, V]) Delete(t *T, k K) {
	t.yield()
	t.touch(ObjVar, mv.meta.ID, true)
	t.fault(SiteMap, mv.meta.Name)
	mv.observe(t, true)
	if mv.writing != 0 && mv.writing != t.g.id {
		t.Panicf("fatal error: concurrent map writes on %s", mv.meta.Name)
	}
	if len(mv.reading) > 0 {
		t.Panicf("fatal error: concurrent map read and map write on %s", mv.meta.Name)
	}
	mv.writing = t.g.id
	t.yield()
	t.touch(ObjVar, mv.meta.ID, true)
	mv.writing = 0
	delete(mv.m, k)
}

// Len reports the map size (also a read).
func (mv *MapVar[K, V]) Len(t *T) int {
	t.yield()
	t.touch(ObjVar, mv.meta.ID, false)
	mv.observe(t, false)
	if mv.writing != 0 && mv.writing != t.g.id {
		t.Panicf("fatal error: concurrent map read and map write on %s", mv.meta.Name)
	}
	return len(mv.m)
}

// Name returns the map's report name.
func (mv *MapVar[K, V]) Name() string { return mv.meta.Name }
