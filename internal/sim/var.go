package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Instrumented shared variables. Every Load/Store emits a MemRead/MemWrite
// event carrying the accessing goroutine's vector clock, which is all a
// happens-before race detector needs. The value semantics are those of the
// chosen interleaving (the scheduler serializes everything), so order
// violations also manifest as wrong values that kernels can Check.

// VarMeta identifies an instrumented variable in access reports.
type VarMeta = event.VarMeta

// MemAccess describes one instrumented access. VC is the accessing
// goroutine's live clock: observers must treat it as read-only and must not
// retain it across calls (clone if needed).
type MemAccess struct {
	Var   *VarMeta
	G     int
	GName string
	VC    hb.VC
	Write bool
	Step  int64
	Time  int64
}

// MemoryObserver receives every instrumented access; the race detector
// implements it.
type MemoryObserver interface {
	Access(ac MemAccess)
}

// Var is an instrumented, unsynchronized shared variable of type V —
// the moral equivalent of a plain Go variable shared across goroutines.
type Var[V any] struct {
	meta   *VarMeta
	rt     *runtime
	autoID int
	val    V
}

// NewVar creates an instrumented variable with the given report name,
// recycling a pooled one when available.
func NewVar[V any](t *T, name string) *Var[V] {
	rt := t.rt
	rt.nextVarID++
	id := rt.nextVarID
	v, recycled := arenaGet[Var[V]](rt)
	if recycled {
		var zero V
		v.val = zero
	} else {
		v.meta = &VarMeta{}
	}
	if name == "" {
		if !recycled || v.autoID != id {
			v.meta.Name = fmt.Sprintf("var#%d", id)
		}
		v.autoID = id
	} else {
		v.meta.Name = name
		v.autoID = 0
	}
	v.meta.ID = id
	v.meta.CreatedBy = t.g.id
	v.rt = rt
	return v
}

// NewVarInit creates an instrumented variable with an initial value.
func NewVarInit[V any](t *T, name string, init V) *Var[V] {
	v := NewVar[V](t, name)
	v.val = init
	return v
}

// Load reads the variable (a preemption point, like any real memory access
// between synchronization operations).
func (v *Var[V]) Load(t *T) V {
	t.yield()
	t.touch(ObjVar, v.meta.ID, false)
	t.fault(SiteVar, v.meta.Name)
	if t.rt.wants(event.MemRead) {
		t.rt.emit(t.g, event.Event{Kind: event.MemRead, Obj: v.meta.Name, ObjID: v.meta.ID, Var: v.meta})
	}
	return v.val
}

// Store writes the variable.
func (v *Var[V]) Store(t *T, x V) {
	t.yield()
	t.touch(ObjVar, v.meta.ID, true)
	t.fault(SiteVar, v.meta.Name)
	if t.rt.wants(event.MemWrite) {
		t.rt.emit(t.g, event.Event{Kind: event.MemWrite, Obj: v.meta.Name, ObjID: v.meta.ID, Var: v.meta})
	}
	v.val = x
}

// Name returns the variable's report name.
func (v *Var[V]) Name() string { return v.meta.Name }

// Peek returns the variable's current value without a scheduling point or an
// access report. It exists for post-run inspection: harnesses (the
// conformance oracle) read terminal program state through it after sim.Run
// has returned. It must not be called from inside a running program — use
// Load there, so the access participates in scheduling and race detection.
func (v *Var[V]) Peek() V { return v.val }

// IntVar is a convenience wrapper for the common int case with
// read-modify-write helpers (each a classic atomicity-violation site).
type IntVar struct{ *Var[int] }

// NewIntVar creates an instrumented int variable.
func NewIntVar(t *T, name string) IntVar { return IntVar{NewVar[int](t, name)} }

// Incr performs the non-atomic v = v + delta read-modify-write.
func (v IntVar) Incr(t *T, delta int) int {
	x := v.Load(t) + delta
	v.Store(t, x)
	return x
}
