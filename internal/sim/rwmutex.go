package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// RWMutex models sync.RWMutex with Go's write-preferring implementation:
// "Write lock requests in Go have a higher privilege than read lock
// requests" (Section 2.2). Consequently a goroutine that read-locks twice,
// with another goroutine's write-lock request arriving in between, deadlocks
// — the Go-specific blocking pattern of Section 5.1.1, which cannot happen
// with pthread_rwlock_t's default read preference.
type RWMutex struct {
	rt             *runtime
	id             int
	autoID         int
	name           string
	readers        map[*G]int // reader -> hold count (re-entrant RLock tracking)
	writer         *G
	waitingWriters []*G
	waitingReaders []*G
	// vcWriter is the clock published by Unlock; vcReaders accumulates
	// clocks published by RUnlock.
	vcWriter  hb.VC
	vcReaders hb.VC
}

// NewRWMutex creates a read-write mutex, recycling a pooled one when
// available.
func NewRWMutex(t *T, name string) *RWMutex {
	rt := t.rt
	rt.nextSyncID++
	id := rt.nextSyncID
	rw, recycled := arenaGet[RWMutex](rt)
	if recycled {
		clear(rw.readers)
		rw.writer = nil
		rw.waitingWriters = rw.waitingWriters[:0]
		rw.waitingReaders = rw.waitingReaders[:0]
		rw.vcWriter.Reset()
		rw.vcReaders.Reset()
	} else {
		rw.readers = make(map[*G]int)
	}
	if name == "" {
		if !recycled || rw.autoID != id {
			rw.name = fmt.Sprintf("rwmutex#%d", id)
		}
		rw.autoID = id
	} else {
		rw.name = name
		rw.autoID = 0
	}
	rw.rt, rw.id = rt, id
	return rw
}

// RLock acquires a read lock. With a writer active or *waiting*, the request
// blocks — even when the caller already holds a read lock.
func (rw *RWMutex) RLock(t *T) {
	t.yield()
	t.touch(ObjSync, rw.id, true)
	t.fault(SiteRWMutex, rw.name)
	if rw.writer == nil && len(rw.waitingWriters) == 0 {
		rw.readers[t.g]++
		t.g.vc.Join(rw.vcWriter)
		t.g.holdLock(rw.name)
		t.emitObj(event.RWRLock, rw.name)
		return
	}
	rw.waitingReaders = append(rw.waitingReaders, t.g)
	t.block(BlockRWMutexR, rw.name)
	t.g.holdLock(rw.name)
	t.emitObjDetail(event.RWRLock, rw.name, "after wait")
}

// RUnlock releases a read lock.
func (rw *RWMutex) RUnlock(t *T) {
	t.yield()
	t.touch(ObjSync, rw.id, true)
	t.fault(SiteRWMutex, rw.name)
	if rw.readers[t.g] == 0 {
		t.Panicf("sync: RUnlock of unlocked RWMutex %s", rw.name)
	}
	rw.readers[t.g]--
	if rw.readers[t.g] == 0 {
		delete(rw.readers, t.g)
	}
	rw.vcReaders.Join(t.g.vc)
	t.g.tick()
	t.g.releaseLock(rw.name)
	t.emitObj(event.RWRUnlock, rw.name)
	rw.promote()
}

// Lock acquires the write lock, blocking until all readers and any earlier
// writer release.
func (rw *RWMutex) Lock(t *T) {
	t.yield()
	t.touch(ObjSync, rw.id, true)
	t.fault(SiteRWMutex, rw.name)
	if rw.writer == nil && len(rw.readers) == 0 && len(rw.waitingWriters) == 0 {
		rw.writer = t.g
		t.g.vc.Join(rw.vcWriter)
		t.g.vc.Join(rw.vcReaders)
		t.g.holdLock(rw.name)
		t.emitObj(event.RWWLock, rw.name)
		return
	}
	rw.waitingWriters = append(rw.waitingWriters, t.g)
	t.block(BlockRWMutexW, rw.name)
	t.g.holdLock(rw.name)
	t.emitObjDetail(event.RWWLock, rw.name, "after wait")
}

// Unlock releases the write lock.
func (rw *RWMutex) Unlock(t *T) {
	t.yield()
	t.touch(ObjSync, rw.id, true)
	t.fault(SiteRWMutex, rw.name)
	if rw.writer != t.g {
		t.Panicf("sync: Unlock of unlocked RWMutex %s", rw.name)
	}
	rw.vcWriter.Join(t.g.vc)
	t.g.tick()
	rw.writer = nil
	t.g.releaseLock(rw.name)
	t.emitObj(event.RWWUnlock, rw.name)
	// As in real Go, readers that queued behind the writer get the lock
	// when it releases; otherwise the next writer runs.
	if len(rw.waitingReaders) > 0 {
		for i, g := range rw.waitingReaders {
			rw.readers[g]++
			g.vc.Join(rw.vcWriter)
			rw.rt.unblock(g)
			rw.waitingReaders[i] = nil
		}
		rw.waitingReaders = rw.waitingReaders[:0]
		return
	}
	rw.promote()
}

// promote hands the lock to the next waiting writer when possible.
func (rw *RWMutex) promote() {
	if rw.writer != nil || len(rw.readers) > 0 || len(rw.waitingWriters) == 0 {
		return
	}
	next := rw.waitingWriters[0]
	n := copy(rw.waitingWriters, rw.waitingWriters[1:])
	rw.waitingWriters[n] = nil
	rw.waitingWriters = rw.waitingWriters[:n]
	rw.writer = next
	next.vc.Join(rw.vcWriter)
	next.vc.Join(rw.vcReaders)
	rw.rt.unblock(next)
}

// Name returns the lock's report name.
func (rw *RWMutex) Name() string { return rw.name }
