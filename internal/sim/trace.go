package sim

import "fmt"

// Event is one entry of the optional execution trace.
type Event struct {
	Step   int64
	Time   int64
	G      int
	GName  string
	Op     string
	Obj    string
	Detail string
}

// String renders the event as a single trace line.
func (e Event) String() string {
	s := fmt.Sprintf("step=%-6d t=%-8d g%d(%s) %s %s", e.Step, e.Time, e.G, e.GName, e.Op, e.Obj)
	if e.Detail != "" {
		s += " [" + e.Detail + "]"
	}
	return s
}
