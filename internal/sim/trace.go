package sim

import (
	"fmt"

	"goconcbugs/internal/event"
)

// Event is one entry of the human-readable execution trace. It predates the
// unified event stream; TraceCollector rebuilds this representation (same
// ops, same details, same order) from event.Events so trace consumers and
// goldens survived the refactor unchanged.
type Event struct {
	Step   int64
	Time   int64
	G      int
	GName  string
	Op     string
	Obj    string
	Detail string
}

// String renders the event as a single trace line.
func (e Event) String() string {
	s := fmt.Sprintf("step=%-6d t=%-8d g%d(%s) %s %s", e.Step, e.Time, e.G, e.GName, e.Op, e.Obj)
	if e.Detail != "" {
		s += " [" + e.Detail + "]"
	}
	return s
}

// traceKindOps maps traced event kinds to the legacy op strings. Kinds
// absent here (map accesses, attempt kinds, scheduling) never appeared in
// the trace.
var traceKindOps = map[event.Kind]string{
	event.MemRead:        "read",
	event.MemWrite:       "write",
	event.ChanSendDone:   "send",
	event.ChanRecvDone:   "recv",
	event.ChanClose:      "close",
	event.MutexLock:      "lock",
	event.MutexUnlock:    "unlock",
	event.MutexTryLock:   "trylock",
	event.RWRLock:        "rlock",
	event.RWRUnlock:      "runlock",
	event.RWWLock:        "wlock",
	event.RWWUnlock:      "wunlock",
	event.WGAdd:          "wg-add",
	event.WGDone:         "wg-done",
	event.WGWaitEnd:      "wg-wait",
	event.OnceDo:         "once-do",
	event.CondSignal:     "cond-signal",
	event.CondBroadcast:  "cond-broadcast",
	event.GoSpawn:        "go",
	event.GoExit:         "exit",
	event.GoPanic:        "panic",
	event.GoBlock:        "block",
	event.GoBlockForever: "block-forever",
}

// TraceCollector is the sink behind the old Config.Trace flag: it buffers
// the full run as []Event. Prefer a streaming sink (ChromeTraceSink) for
// long runs; this one exists for tests, goldens, and -trace output where
// the whole log is wanted in memory.
type TraceCollector struct {
	events []Event
}

// Kinds implements event.Sink.
func (tc *TraceCollector) Kinds() []event.Kind {
	out := make([]event.Kind, 0, len(traceKindOps))
	for k := range traceKindOps {
		out = append(out, k)
	}
	return out
}

// Event implements event.Sink.
func (tc *TraceCollector) Event(ev *event.Event) {
	e := Event{
		Step: ev.Step, Time: ev.Time, G: ev.G, GName: ev.GName,
		Op: traceKindOps[ev.Kind], Obj: ev.Obj, Detail: ev.Detail,
	}
	switch ev.Kind {
	case event.ChanSendDone:
		if ev.Aux != 0 {
			e.Detail = fmt.Sprintf("handoff to g%d", ev.Aux)
		}
	case event.ChanRecvDone:
		if ev.Aux != 0 {
			e.Detail = fmt.Sprintf("rendezvous with g%d", ev.Aux)
		}
	case event.MutexTryLock:
		e.Detail = "acquired"
	case event.WGAdd:
		e.Detail = fmt.Sprintf("%+d -> %d", ev.Delta, ev.Counter)
	case event.WGDone:
		e.Detail = fmt.Sprintf("-> %d", ev.Counter)
	}
	tc.events = append(tc.events, e)
}

// Events returns the collected trace.
func (tc *TraceCollector) Events() []Event { return tc.events }
