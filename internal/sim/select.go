package sim

import "goconcbugs/internal/event"

// Select semantics follow Section 2.3: a select blocks until one of its
// cases can make progress or a default branch exists; when more than one
// case is ready the runtime chooses uniformly at random — the source of the
// non-determinism bugs in Section 6.1.2 (Figure 11).

type selectOp struct {
	done   bool
	chosen int
}

// Case is one arm of a Select. Build cases with OnRecv, OnSend, and Default.
type Case struct {
	core      *chanCore
	dir       int
	val       any
	onRecv    func(v any, ok bool)
	onSend    func()
	isDefault bool
	onDefault func()
	name      string
}

// OnRecv builds a receive case; fn (optional) runs with the received value
// when this case is chosen.
func OnRecv[V any](ch Chan[V], fn func(v V, ok bool)) Case {
	c := Case{core: ch.core, dir: dirRecv, name: ch.Name()}
	if fn != nil {
		c.onRecv = func(v any, ok bool) {
			if !ok || v == nil {
				var zero V
				fn(zero, ok)
				return
			}
			fn(v.(V), ok)
		}
	}
	return c
}

// OnSend builds a send case; fn (optional) runs after the send when this
// case is chosen.
func OnSend[V any](ch Chan[V], v V, fn func()) Case {
	return Case{core: ch.core, dir: dirSend, val: v, onSend: fn, name: ch.Name()}
}

// Default builds a default case, making the select non-blocking.
func Default(fn func()) Case {
	return Case{isDefault: true, onDefault: fn}
}

// Select executes a select statement over the cases and returns the index
// of the case that ran.
func Select(t *T, cases ...Case) int {
	t.yield()
	// The whole select — readiness checks, completing the chosen case, or
	// registering on every case channel — is one transition touching every
	// case's channel (conservatively: the chosen case's effect is on one of
	// them, and a blocked select mutates all their wait queues).
	for _, c := range cases {
		if c.core != nil {
			t.touch(ObjChan, c.core.id, true)
		}
	}
	t.fault(SiteSelect, "select")
	// Gather ready cases (nil-channel cases are never ready).
	var ready []int
	defaultIdx := -1
	for i, c := range cases {
		if c.isDefault {
			defaultIdx = i
			continue
		}
		if c.core == nil {
			continue
		}
		if c.dir == dirSend && c.core.sendReady() {
			ready = append(ready, i)
		}
		if c.dir == dirRecv && c.core.recvReady() {
			ready = append(ready, i)
		}
	}
	if len(ready) > 0 {
		// Uniform random choice among ready cases, as in real Go.
		pick := t.rt.choose(len(ready), -1)
		t.selectReady(t.rt.lastDecision, len(ready))
		idx := ready[pick]
		runCase(t, cases[idx])
		return idx
	}
	if defaultIdx >= 0 {
		if cases[defaultIdx].onDefault != nil {
			cases[defaultIdx].onDefault()
		}
		return defaultIdx
	}
	// Nothing ready and no default: park on every (non-nil) channel.
	t.emitObj(event.SelectBlocking, "select")
	sel := &selectOp{chosen: -1}
	ws := make([]*waiter, len(cases))
	registered := false
	for i, c := range cases {
		if c.isDefault || c.core == nil {
			continue
		}
		w := &waiter{g: t.g, dir: c.dir, sel: sel, caseIdx: i}
		if c.dir == dirSend {
			w.val = c.val
			w.vcSnap = t.g.vc.Clone()
			c.core.sendq = append(c.core.sendq, w)
		} else {
			c.core.recvq = append(c.core.recvq, w)
		}
		ws[i] = w
		registered = true
	}
	if !registered {
		// Every case is on a nil channel: block forever.
		t.blockForever(BlockSelect, "select on nil channels only")
	}
	t.block(BlockSelect, "select")
	idx := sel.chosen
	w := ws[idx]
	if w.panicMsg != "" {
		t.Panicf("%s", w.panicMsg)
	}
	c := cases[idx]
	if c.dir == dirSend {
		// The receiver already took our value and joined clocks.
		t.g.tick()
		if c.onSend != nil {
			c.onSend()
		}
	} else {
		if c.onRecv != nil {
			c.onRecv(w.recvVal, w.recvOK)
		}
	}
	return idx
}

// runCase executes a case known to be ready.
func runCase(t *T, c Case) {
	if c.dir == dirSend {
		c.core.completeSend(t, c.val)
		if c.onSend != nil {
			c.onSend()
		}
		return
	}
	v, ok := c.core.completeRecv(t)
	if c.onRecv != nil {
		c.onRecv(v, ok)
	}
}
