package sim

import (
	"errors"
	"fmt"
	"time"
)

// Context models the context package, which "Go introduces ... to carry
// request-specific data or metadata across goroutines" (Section 2.3).
// Misuse causes both blocking bugs (Figure 6: a re-assigned context object
// whose attached goroutine can no longer be reached) and non-blocking bugs
// (etcd#7816: a data race on a field shared through a context).
//
// As in real Go, WithCancel attaches a propagation goroutine when the parent
// is cancellable; that goroutine is exactly the one leaked in Figure 6 when
// nothing ever cancels the context.

// Context errors, mirroring the context package.
var (
	ErrCanceled         = errors.New("context canceled")
	ErrDeadlineExceeded = errors.New("context deadline exceeded")
)

// Context is a simulated context.Context.
type Context struct {
	rt     *runtime
	name   string
	done   Chan[struct{}]
	err    error
	parent *Context
	// Values carries request-scoped data; the paper notes context
	// objects "are designed to be accessed by multiple goroutines that
	// are attached to the context", which is how etcd#7816 raced.
	values map[string]any
}

// CancelFunc cancels a context.
type CancelFunc func(t *T)

// Background returns an empty root context that is never canceled.
func Background(t *T) *Context {
	return &Context{rt: t.rt, name: "context.Background"}
}

// Done returns the channel closed on cancellation (nil channel for roots,
// as in real Go).
func (c *Context) Done() Chan[struct{}] { return c.done }

// Err returns the cancellation cause, nil while the context is live.
func (c *Context) Err() error { return c.err }

// Value looks up a request-scoped value, walking up the parent chain.
func (c *Context) Value(key string) any {
	for ctx := c; ctx != nil; ctx = ctx.parent {
		if v, ok := ctx.values[key]; ok {
			return v
		}
	}
	return nil
}

// WithValue derives a context carrying key=value.
func WithValue(t *T, parent *Context, key string, value any) *Context {
	return &Context{
		rt: t.rt, name: parent.name + "+value", parent: parent,
		done: parent.done, values: map[string]any{key: value},
	}
}

// WithCancel derives a cancellable context. When the parent is itself
// cancellable, a propagation goroutine is spawned that waits for either the
// parent's or the child's cancellation — the goroutine that Figure 6's bug
// orphans.
func WithCancel(t *T, parent *Context) (*Context, CancelFunc) {
	t.rt.nextSyncID++
	ctx := &Context{
		rt:     t.rt,
		name:   fmt.Sprintf("context#%d", t.rt.nextSyncID),
		done:   Chan[struct{}]{core: t.rt.newChanCore(fmt.Sprintf("ctx#%d.done", t.rt.nextSyncID), 0)},
		parent: parent,
	}
	cancelled := Chan[struct{}]{core: t.rt.newChanCore(ctx.name+".cancel", 0)}
	cancel := func(ct *T) {
		ct.yield()
		ct.touch(ObjChan, ctx.done.core.id, true)
		ct.touch(ObjChan, cancelled.core.id, true)
		if ctx.err == nil {
			ctx.err = ErrCanceled
			ctx.done.core.closeFromRuntime(ct.g.vc)
			ct.g.tick()
		}
		cancelled.core.closeFromRuntime(ct.g.vc)
	}
	if !parent.done.IsNil() {
		t.GoNamed(ctx.name+".propagate", func(pt *T) {
			Select(pt,
				OnRecv(parent.done, func(struct{}, bool) {
					if ctx.err == nil {
						ctx.err = parent.err
						ctx.done.core.closeFromRuntime(pt.g.vc)
					}
				}),
				OnRecv(cancelled, nil),
				OnRecv(ctx.done, nil),
			)
		})
	}
	return ctx, cancel
}

// WithTimeout derives a context that is cancelled automatically after d.
func WithTimeout(t *T, parent *Context, d time.Duration) (*Context, CancelFunc) {
	ctx, cancel := WithCancel(t, parent)
	vc := t.g.vc.Clone()
	t.g.tick()
	entry := t.rt.scheduleTimer(d, func() {
		if ctx.err == nil {
			ctx.err = ErrDeadlineExceeded
			ctx.done.core.closeFromRuntime(vc)
		}
	})
	return ctx, func(ct *T) {
		entry.stopped = true
		cancel(ct)
	}
}

// Name returns the context's report name.
func (c *Context) Name() string { return c.name }
