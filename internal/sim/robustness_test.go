package sim

import (
	"strings"
	"testing"

	"goconcbugs/internal/event"
)

// Robustness and failure-injection tests: the runtime must stay sane when
// the program misbehaves in ways beyond simulated panics.

func TestHostPanicPropagates(t *testing.T) {
	// A genuine bug in kernel code (not a simulated runtime panic) must
	// surface to the host, not be swallowed.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("host panic swallowed")
		}
		if !strings.Contains(toString(r), "kernel bug") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Run(Config{Seed: 1}, func(tt *T) {
		panic("kernel bug")
	})
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

func TestHostPanicInChildPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("child host panic swallowed")
		}
	}()
	Run(Config{Seed: 1}, func(tt *T) {
		tt.Go(func(ct *T) { panic("child bug") })
		tt.Sleep(10)
	})
}

func TestRunAfterHostPanicStillWorks(t *testing.T) {
	// A crashed run must not poison subsequent runs (scheduler state is
	// per-run).
	func() {
		defer func() { recover() }()
		Run(Config{Seed: 1}, func(tt *T) { panic("boom") })
	}()
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { ch.Send(ct, 1) })
		v, _ := ch.Recv(tt)
		tt.Checkf(v == 1, "got %d", v)
	})
	if res.Failed() {
		t.Fatalf("follow-up run failed: %+v", res.CheckFailures)
	}
}

func TestTinyStepBudget(t *testing.T) {
	res := Run(Config{Seed: 1, MaxSteps: 3}, func(tt *T) {
		for {
			tt.Yield()
		}
	})
	if res.Outcome != OutcomeStepLimit {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestChooserOutOfRangeIsClamped(t *testing.T) {
	res := Run(Config{Seed: 1, Chooser: func(n, preferred int) int { return 999 }}, func(tt *T) {
		done := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { done.Send(ct, 1) })
		done.Recv(tt)
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestNegativeChooserIsClamped(t *testing.T) {
	res := Run(Config{Seed: 1, Chooser: func(n, preferred int) int { return -5 }}, func(tt *T) {
		done := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { done.Send(ct, 1) })
		done.Recv(tt)
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestObserverMonitorChooserTogether(t *testing.T) {
	// Both adapter sinks plus the chooser at once must compose.
	var accesses, events, choices int
	res := Run(Config{
		Seed: 1,
		Sinks: []event.Sink{
			ObserverSink{Obs: observerFunc(func(MemAccess) { accesses++ })},
			MonitorSink{Mon: monitorFunc(func(SyncEvent) { events++ })},
		},
		Chooser: func(n, preferred int) int {
			choices++
			return n - 1
		},
	}, func(tt *T) {
		x := NewVar[int](tt, "x")
		mu := NewMutex(tt, "mu")
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 2)
		for i := 0; i < 2; i++ {
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				x.Store(ct, x.Load(ct)+1)
				mu.Unlock(ct)
				wg.Done(ct)
			})
		}
		wg.Wait(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
	if accesses == 0 || events == 0 || choices == 0 {
		t.Fatalf("hooks unused: accesses=%d events=%d choices=%d", accesses, events, choices)
	}
}

type observerFunc func(MemAccess)

func (f observerFunc) Access(ac MemAccess) { f(ac) }

type monitorFunc func(SyncEvent)

func (f monitorFunc) SyncEvent(ev SyncEvent) { f(ev) }

func TestManyGoroutines(t *testing.T) {
	const n = 200
	res := Run(Config{Seed: 9, MaxSteps: 500_000}, func(tt *T) {
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, n)
		ch := NewChan[int](tt, 16)
		tt.Go(func(ct *T) {
			for i := 0; i < n; i++ {
				ch.Recv(ct)
			}
		})
		for i := 0; i < n; i++ {
			i := i
			tt.Go(func(ct *T) {
				ch.Send(ct, i)
				wg.Done(ct)
			})
		}
		wg.Wait(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: outcome=%v leaks=%d", res.Outcome, len(res.Leaked))
	}
	if res.GoroutinesCreated != n+2 {
		t.Fatalf("created %d, want %d", res.GoroutinesCreated, n+2)
	}
}

func TestGoroutineNamesAreUseful(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tt.GoNamed("worker", func(ct *T) {})
		tt.Go(func(ct *T) {})
		tt.Sleep(5)
	})
	names := map[string]bool{}
	for _, g := range res.Goroutines {
		names[g.Name] = true
	}
	if !names["main"] || !names["worker"] {
		t.Fatalf("names = %v", names)
	}
}
