// Package sim implements a deterministic, instrumented model of the Go
// concurrency runtime.
//
// The paper studies bugs whose manifestation depends on scheduling
// ("Sometimes, we needed to run a buggy program a lot of times or manually
// add sleep", Section 4). sim removes that obstacle: simulated goroutines run
// one at a time under a cooperative scheduler whose every choice (which
// runnable goroutine to run next, which ready select case to take) is drawn
// from a seeded random source, so an interleaving is a pure function of the
// seed. All of Go's concurrency primitives that the paper discusses are
// modeled with their documented semantics:
//
//   - goroutines (Section 2.1), including anonymous-function spawning
//   - Mutex, RWMutex with Go's writer-priority implementation, WaitGroup,
//     Cond, Once, atomics (Section 2.2)
//   - buffered/unbuffered/nil/closed channels, select with its uniform
//     random choice among ready cases (Section 2.3)
//   - time.Timer/Ticker on a virtual clock, context, and an io.Pipe-style
//     message-passing library (Sections 2.3, 5.1.2, 6.1.2)
//
// Every synchronization operation maintains vector clocks (package hb), and
// every instrumented transition — memory accesses, synchronization
// operations, goroutine lifecycle, scheduler picks — is emitted as one
// typed event (package event) to the sinks attached via Config.Sinks. The
// race detector (package race), the rule checker (package vet), the DPOR
// footprint collector (package explore), the execution tracer
// (TraceCollector), and the Chrome-trace exporter (ChromeTraceSink) are all
// sinks over that single stream, so any set of them shares one instrumented
// run. The built-in deadlock detector model and the goroutine-leak detector
// (package deadlock) interpret the Result. A Chooser hook replaces random
// scheduling with enumerable decisions (package explore's systematic mode).
// Beyond the standard primitives, Semaphore models the buffered-channel
// concurrency limiter and MapVar models a plain shared map with the
// runtime's "concurrent map writes" crash.
//
// # Deliberate divergences from the real runtime
//
//   - Mutex.Unlock requires the unlocking goroutine to hold the lock; real
//     Go permits cross-goroutine unlocks. The strict model turns lock
//     hand-off typos into simulated panics instead of silent corruption.
//   - A run continues to quiescence after main returns (a server that
//     never exits), so leftover blocked goroutines are classified as leaks
//     rather than being killed mid-flight; the built-in-detector model
//     only fires while main is live, as a real program would have exited.
//   - Tickers fire a bounded number of times (NewTickerN /
//     DefaultTickerFires) so ticker-driven server loops reach quiescence.
//   - Virtual time advances only when every goroutine is blocked; CPU work
//     is modeled explicitly with T.Work/T.Sleep.
//   - A simulated panic terminates the whole run immediately (there is no
//     recover), matching an unrecovered production crash.
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"goconcbugs/internal/event"
)

// Default limits applied when Config leaves the corresponding field zero.
const (
	DefaultMaxSteps      = 100_000
	DefaultLeakThreshold = 500
)

// Program is the entry function of a simulated program; it runs as the main
// goroutine (id 1).
type Program func(t *T)

// Config controls a single simulated run.
type Config struct {
	// Seed selects the interleaving. Equal seeds give identical runs.
	Seed int64
	// MaxSteps bounds scheduling steps so programs with perpetually
	// runnable goroutines (server loops) terminate; 0 means
	// DefaultMaxSteps.
	MaxSteps int64
	// LeakThreshold is the number of steps a goroutine must have been
	// continuously blocked for to be reported as leaked when the run ends
	// at the step limit (at quiescence every blocked goroutine is leaked
	// by construction); 0 means DefaultLeakThreshold.
	LeakThreshold int64
	// Sinks receive the run's unified event stream (package event): every
	// instrumented memory access, synchronization operation, goroutine
	// lifecycle transition, and scheduler step. Detectors, tracers, and
	// schedule observers all attach here; any number share the single
	// instrumented pass. Sinks with an empty or disjoint Kinds() set cost
	// nothing at the emission sites they skip. Use ObserverSink,
	// MonitorSink, and DPORSink to adapt the historical observer
	// interfaces.
	Sinks []event.Sink
	// Chooser, when non-nil, replaces the seeded random source for
	// *scheduling* decisions — which runnable goroutine runs next and
	// which ready select case fires. It receives the number of options
	// and, for goroutine-scheduling decisions, the index of the option
	// that continues the currently running goroutine (-1 when it cannot
	// continue, and for select-case decisions); it must return an index
	// in [0, n). Package explore's systematic mode uses this to
	// enumerate schedules exhaustively — and, with the preferred index,
	// to bound preemptions CHESS-style. T.Rand (input randomness) stays
	// on the seed either way. (Chooser is an input to scheduling, not an
	// observation of it, which is why it is not a Sink.)
	Chooser func(n, preferred int) int
	// Injector, when non-nil, is consulted at every instrumented primitive
	// operation and may perturb it (injected yields, early timeouts,
	// spurious wakeups, goroutine death, panics, channel closes — see
	// FaultAction). Nil costs one nil check per operation. Injectors are
	// per-run: package inject's implementation is stateful and must not be
	// shared across concurrent runs.
	Injector Injector
	// Name labels the run in reports.
	Name string
}

// Outcome describes how a run ended.
type Outcome int

const (
	// OutcomeOK: the program ran to quiescence (no runnable goroutines,
	// no pending timers). Blocked goroutines, if any, are leaked.
	OutcomeOK Outcome = iota
	// OutcomeBuiltinDeadlock: the model of Go's built-in detector fired —
	// every live goroutine was asleep on a concurrency primitive while
	// the main goroutine was still live ("all goroutines are asleep -
	// deadlock!").
	OutcomeBuiltinDeadlock
	// OutcomePanic: a simulated runtime panic (send on closed channel,
	// double close, negative WaitGroup counter, ...) crashed the program.
	OutcomePanic
	// OutcomeStepLimit: the step budget ran out with runnable goroutines
	// remaining (typically a server loop).
	OutcomeStepLimit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBuiltinDeadlock:
		return "builtin-deadlock"
	case OutcomePanic:
		return "panic"
	case OutcomeStepLimit:
		return "step-limit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// PanicInfo records a simulated panic.
type PanicInfo struct {
	G    int
	Name string
	Msg  string
	Step int64
}

// GoroutineInfo is the end-of-run record for one simulated goroutine.
type GoroutineInfo struct {
	ID           int
	Name         string
	State        GState
	BlockKind    BlockKind
	BlockObj     string
	CreatedStep  int64
	CreatedTime  int64
	EndTime      int64 // virtual time when it finished; -1 if it never did
	BlockedSince int64 // step at which its current block began; -1 if not blocked
	// HeldLocks lists the lock names the goroutine held when the run
	// ended — the raw material for circular-wait analysis.
	HeldLocks []string
}

// Result is the full observable outcome of one simulated run.
type Result struct {
	Name              string
	Seed              int64
	Outcome           Outcome
	Steps             int64
	VirtualTime       int64 // nanoseconds of virtual time elapsed
	GoroutinesCreated int
	// RandDraws counts T.Rand consultations. Nonzero means program
	// behavior consumed interleaving-ordered randomness — a signal the
	// explorer's trace-keyed state memoization uses to disable itself.
	RandDraws int64
	// Leaked lists goroutines judged blocked forever (the paper's
	// "blocking bug" manifestation: goroutines that "wait for resources
	// that no other goroutines supply").
	Leaked []GoroutineInfo
	// Blocked lists every goroutine still blocked when the run ended
	// (superset of Leaked under OutcomeStepLimit).
	Blocked []GoroutineInfo
	// Goroutines holds the record of every goroutine created.
	Goroutines []GoroutineInfo
	Panics     []PanicInfo
	// CheckFailures records violated kernel-level invariants
	// (T.Check/T.Checkf) — the oracle for non-blocking misbehavior.
	CheckFailures []string
	// DeadlockReport is the built-in detector's message when
	// Outcome == OutcomeBuiltinDeadlock.
	DeadlockReport string
}

// Failed reports whether the run manifested any misbehavior: a deadlock, a
// panic, a leak, or a check failure.
func (r *Result) Failed() bool {
	return r.Outcome == OutcomeBuiltinDeadlock || r.Outcome == OutcomePanic ||
		len(r.Leaked) > 0 || len(r.CheckFailures) > 0
}

// Run executes main under cfg and returns the outcome. It is safe to call
// concurrently from multiple host goroutines; each run is self-contained.
// Loops that execute many runs back-to-back should prefer a RunPool, which
// recycles the whole runtime between runs.
func Run(cfg Config, main Program) *Result {
	rt := newRuntime(cfg)
	rt.execute(main)
	if rt.hostPanic != nil {
		// A non-simulated panic in program code is a bug in the
		// caller's code: propagate it on the caller's goroutine.
		rt.releaseWorkers()
		panic(rt.hostPanic)
	}
	res := rt.finalize()
	rt.releaseWorkers()
	return res
}

// execute drives one run of main to completion: spawn, first dispatch, wait
// for the end, unwind stragglers.
func (rt *runtime) execute(main Program) {
	rt.spawn("main", main)
	// The first dispatch necessarily picks main (the only goroutine);
	// after that, scheduling decisions execute inline on whichever
	// simulated goroutine is handing off the CPU, and this caller simply
	// waits for the run to end.
	if g := rt.dispatch(); g != nil {
		rt.wake(g)
	} else {
		rt.endRun()
	}
	<-rt.done
	rt.teardown()
}

type runtime struct {
	cfg           Config
	rng           *rand.Rand // lazily seeded; see random()
	rngSrc        *rand.PCG  // the rng's reseedable source, kept for reuse
	rngReady      bool       // rng is seeded for the current run
	gs            []*G
	now           int64
	step          int64
	timers        timerHeap
	timerSeq      int64
	done          chan struct{} // capacity 1; endRun -> Run caller
	dead          chan struct{} // killed goroutine -> Run caller during teardown
	killing       bool
	stopping      bool
	outcome       Outcome
	deadlockMsg   string
	panics        []PanicInfo
	checkFailures []string
	lastG         *G
	hostPanic     any
	nextVarID     int
	nextChanID    int
	nextSyncID    int
	maxSteps      int64
	leakThreshold int64
	runq          []*G // scratch buffer for dispatch's runnable scan
	// mux fans the event stream out to Config.Sinks (nil when none —
	// every emission site then reduces to one nil check); scratch is the
	// reused per-run event buffer, so emission never allocates.
	mux     *event.Mux
	scratch event.Event
	// sched accumulates the in-flight transition's footprint when some
	// sink subscribed to SchedStep events; chooserCalls numbers Chooser
	// invocations so decision indices line up with the explorer's
	// recorded sequence.
	sched        *schedState
	chooserCalls int
	lastDecision int // Chooser call index of the latest choose, -1 if forced
	// randDraws counts T.Rand consultations this run. Program-visible
	// randomness depends on the global draw order, i.e. on the concrete
	// interleaving — the explorer's state memoization keys on the
	// dependence trace alone, so it must switch itself off whenever a run
	// drew (Result.RandDraws > 0).
	randDraws int64
	// Run-pooling state. arena recycles per-primitive structures across
	// runs in construction order (see arenaGet); pooled marks a runtime
	// owned by a RunPool, whose finalize reuses res instead of allocating
	// a fresh Result.
	arena     []any
	arenaNext int
	pooled    bool
	res       Result
}

func newRuntime(cfg Config) *runtime {
	rt := &runtime{
		done: make(chan struct{}, 1),
		dead: make(chan struct{}),
	}
	rt.reset(cfg)
	return rt
}

// reset prepares the runtime for a fresh run under cfg, recycling every
// backing the previous run grew: the goroutine slots (and their parked
// workers), the primitive arena, the timer heap, scratch buffers, and the
// seeded source. It is the single initialization path — newRuntime calls it
// on a zero runtime — so fresh and pooled runs cannot drift.
func (rt *runtime) reset(cfg Config) {
	rt.cfg = cfg
	rt.rngReady = false
	rt.gs = rt.gs[:0]
	rt.now = 0
	rt.step = 0
	rt.timers = rt.timers[:0]
	rt.timerSeq = 0
	rt.killing = false
	rt.stopping = false
	rt.outcome = OutcomeOK
	rt.deadlockMsg = ""
	rt.panics = rt.panics[:0]
	rt.checkFailures = rt.checkFailures[:0]
	rt.lastG = nil
	rt.hostPanic = nil
	rt.nextVarID = 0
	rt.nextChanID = 0
	rt.nextSyncID = 0
	rt.runq = rt.runq[:0]
	rt.scratch = event.Event{}
	rt.chooserCalls = 0
	rt.lastDecision = 0
	rt.randDraws = 0
	rt.arenaNext = 0
	rt.maxSteps = cfg.MaxSteps
	rt.leakThreshold = cfg.LeakThreshold
	if rt.maxSteps <= 0 {
		rt.maxSteps = DefaultMaxSteps
	}
	if rt.leakThreshold <= 0 {
		rt.leakThreshold = DefaultLeakThreshold
		if half := rt.maxSteps / 2; half < rt.leakThreshold {
			rt.leakThreshold = half
		}
	}
	rt.mux = event.NewMux(cfg.Sinks)
	if rt.wants(event.Sched) {
		if rt.sched == nil {
			rt.sched = &schedState{}
		} else {
			rt.sched.reset()
		}
	} else {
		rt.sched = nil
	}
}

// releaseWorkers shuts down the parked host workers behind every goroutine
// slot. After it returns the runtime cannot run again; a plain Run calls it
// before returning so no host goroutines outlive the call, and RunPool calls
// it from Close.
func (rt *runtime) releaseWorkers() {
	for _, g := range rt.gs[:cap(rt.gs)] {
		if g != nil {
			close(g.resume)
		}
	}
	rt.gs = nil
}

// wants reports whether some sink subscribed to k. Emission sites guard on
// it so payload assembly is skipped when nobody is listening.
func (rt *runtime) wants(k event.Kind) bool {
	return rt.mux != nil && rt.mux.Wants(k)
}

// emit stamps the common header (step, virtual time, acting goroutine, its
// live clock and held locks) onto ev and dispatches it through the run's
// scratch buffer. Callers must have checked wants(ev.Kind); the slices the
// stamped event aliases are live runtime state per package event's
// ownership rules.
func (rt *runtime) emit(g *G, ev event.Event) {
	ev.Step = rt.step
	ev.Time = rt.now
	ev.G = g.id
	ev.GName = g.name
	ev.VC = g.vc
	ev.HeldLocks = g.held
	rt.scratch = ev
	rt.mux.Emit(&rt.scratch)
}

// emitObj is the common emission shape: a payload-free event about one named
// object, dispatched only when some sink subscribed to the kind.
func (t *T) emitObj(k event.Kind, obj string) {
	if t.rt.wants(k) {
		t.rt.emit(t.g, event.Event{Kind: k, Obj: obj})
	}
}

// emitObjDetail emits an event about obj with a static detail string.
func (t *T) emitObjDetail(k event.Kind, obj, detail string) {
	if t.rt.wants(k) {
		t.rt.emit(t.g, event.Event{Kind: k, Obj: obj, Detail: detail})
	}
}

// random returns the run's seeded source, (re)seeding it on first use. Runs
// under a Chooser (systematic exploration) whose programs never call T.Rand
// skip the seeding cost entirely. The PCG and its Rand wrapper are allocated
// once per runtime and reseeded on pooled reuse.
func (rt *runtime) random() *rand.Rand {
	if !rt.rngReady {
		if rt.rngSrc == nil {
			rt.rngSrc = rand.NewPCG(uint64(rt.cfg.Seed), 0x9e3779b97f4a7c15)
			rt.rng = rand.New(rt.rngSrc)
		} else {
			rt.rngSrc.Seed(uint64(rt.cfg.Seed), 0x9e3779b97f4a7c15)
		}
		rt.rngReady = true
	}
	return rt.rng
}

// dispatch is one scheduler step: it picks the next goroutine to run, firing
// due timers and advancing virtual time when nothing is runnable. It returns
// nil when the run is over (quiescent, deadlocked, or out of steps), with
// rt.outcome/rt.deadlockMsg already recorded.
//
// Exactly one simulated goroutine executes at any moment — control moves by
// direct handoff, so dispatch always runs on whichever host goroutine holds
// the CPU token (the yielding/blocking/exiting goroutine, or the Run caller
// for the first step). All simulated state is therefore free of host-level
// data races by construction, without a scheduler goroutine in the middle.
func (rt *runtime) dispatch() *G {
	for {
		if rt.step >= rt.maxSteps {
			rt.outcome = OutcomeStepLimit
			return nil
		}
		runnable := rt.runnable()
		if len(runnable) == 0 {
			if rt.fireDueTimers() {
				continue
			}
			blocked := rt.blockedGs()
			if len(blocked) == 0 {
				return nil // quiescent, everything done
			}
			if rt.mainLive() && rt.allAsleepOnPrimitives(blocked) {
				rt.outcome = OutcomeBuiltinDeadlock
				rt.deadlockMsg = rt.deadlockReport(blocked)
				return nil
			}
			// Either the program has exited with stragglers, or
			// some goroutine waits on a non-primitive resource the
			// built-in detector cannot see (Section 5.3).
			return nil
		}
		preferred := -1
		for i, g := range runnable {
			if g == rt.lastG {
				preferred = i
				break
			}
		}
		g := runnable[rt.choose(len(runnable), preferred)]
		if rt.sched != nil {
			rt.schedBegin(g, rt.lastDecision, runnable, preferred)
		}
		rt.lastG = g
		rt.step++
		return g
	}
}

// endRun marks the run finished and releases the Run caller. The calling
// simulated goroutine (if any) must park itself afterwards and touch no
// shared runtime state: teardown runs concurrently on the caller's host
// goroutine from here on. The buffered send (exactly one per run) keeps the
// channel reusable across pooled runs, unlike a close.
func (rt *runtime) endRun() {
	rt.done <- struct{}{}
}

// choose picks among n scheduling options, via the Chooser when one is
// configured (systematic exploration) and the seeded source otherwise.
// preferred is the option continuing the currently running goroutine, -1
// when there is none.
func (rt *runtime) choose(n, preferred int) int {
	rt.lastDecision = -1
	if n <= 1 {
		return 0
	}
	if rt.cfg.Chooser != nil {
		rt.lastDecision = rt.chooserCalls
		rt.chooserCalls++
		idx := rt.cfg.Chooser(n, preferred)
		if idx < 0 || idx >= n {
			idx = 0
		}
		return idx
	}
	return rt.random().IntN(n)
}

// wake hands the CPU token to g. The caller must immediately park, exit, or
// (for the Run caller) start waiting on rt.done.
func (rt *runtime) wake(g *G) {
	g.state = GRunning
	g.resume <- struct{}{}
}

// runnable collects the runnable goroutines into a scratch buffer that is
// reused across dispatch steps (safe: exactly one dispatch runs at a time
// and the buffer never escapes it).
func (rt *runtime) runnable() []*G {
	out := rt.runq[:0]
	for _, g := range rt.gs {
		if g.state == GRunnable {
			out = append(out, g)
		}
	}
	rt.runq = out
	return out
}

func (rt *runtime) blockedGs() []*G {
	var out []*G
	for _, g := range rt.gs {
		if g.state == GBlocked {
			out = append(out, g)
		}
	}
	return out
}

func (rt *runtime) mainLive() bool {
	return len(rt.gs) > 0 && rt.gs[0].state != GDone && rt.gs[0].state != GPanicked
}

// allAsleepOnPrimitives mirrors the built-in detector's visibility: it only
// understands waits on Go concurrency primitives, not waits for "other
// systems resources" (Section 5.3), which BlockExternal models.
func (rt *runtime) allAsleepOnPrimitives(blocked []*G) bool {
	for _, g := range blocked {
		if g.block.kind == BlockExternal {
			return false
		}
	}
	return true
}

func (rt *runtime) deadlockReport(blocked []*G) string {
	msg := "fatal error: all goroutines are asleep - deadlock!"
	for _, g := range blocked {
		msg += fmt.Sprintf("\ngoroutine %d [%s]: %s", g.id, g.block.kind, g.block.obj)
	}
	return msg
}

// teardown unwinds every still-parked simulated goroutine so that a Run
// leaves no host goroutines behind.
func (rt *runtime) teardown() {
	rt.killing = true
	for _, g := range rt.gs {
		switch g.state {
		case GRunnable, GBlocked:
			g.resume <- struct{}{}
			<-rt.dead
		}
	}
}

func (rt *runtime) finalize() *Result {
	// Deliver the final transition's metadata: no further pick will flush
	// it. Safe here — finalize runs on Run's caller after every simulated
	// goroutine has parked or exited. RunEnd then tells streaming sinks
	// the event stream is complete.
	rt.schedFlush()
	if rt.mux != nil {
		rt.mux.RunEnd()
	}
	var res *Result
	var gor, blk, lkd []GoroutineInfo
	if rt.pooled {
		// A pooled finalize recycles the previous run's Result and its
		// slice backings; the returned pointer is valid until the next
		// RunPool.Run (Clone to retain).
		res = &rt.res
		gor, blk, lkd = res.Goroutines[:0], res.Blocked[:0], res.Leaked[:0]
	} else {
		res = new(Result)
	}
	*res = Result{
		Name:              rt.cfg.Name,
		Seed:              rt.cfg.Seed,
		Outcome:           rt.outcome,
		Steps:             rt.step,
		VirtualTime:       rt.now,
		GoroutinesCreated: len(rt.gs),
		RandDraws:         rt.randDraws,
		Panics:            rt.panics,
		CheckFailures:     rt.checkFailures,
		DeadlockReport:    rt.deadlockMsg,
		Goroutines:        gor,
		Blocked:           blk,
		Leaked:            lkd,
	}
	if len(rt.panics) > 0 && rt.outcome != OutcomeBuiltinDeadlock {
		res.Outcome = OutcomePanic
	}
	for _, g := range rt.gs {
		info := g.info()
		res.Goroutines = append(res.Goroutines, info)
		if g.finalState != GBlocked {
			continue
		}
		res.Blocked = append(res.Blocked, info)
		if res.Outcome == OutcomePanic {
			continue // the crash preempts liveness analysis
		}
		leaked := true
		if res.Outcome == OutcomeStepLimit {
			// The run was cut short; only long-blocked goroutines
			// are confidently leaked.
			leaked = rt.step-g.blockedSince >= rt.leakThreshold
		}
		if leaked {
			res.Leaked = append(res.Leaked, info)
		}
	}
	// Empty collections read as nil, as they always have: recycled backings
	// must not surface as non-nil empty slices (JSON null vs [], DeepEqual).
	if len(res.Blocked) == 0 {
		res.Blocked = nil
	}
	if len(res.Leaked) == 0 {
		res.Leaked = nil
	}
	if len(res.Panics) == 0 {
		res.Panics = nil
	}
	if len(res.CheckFailures) == 0 {
		res.CheckFailures = nil
	}
	return res
}

// Clone deep-copies a Result so it stays valid past the next run of the
// RunPool that produced it.
func (r *Result) Clone() *Result {
	cp := *r
	cp.Leaked = append([]GoroutineInfo(nil), r.Leaked...)
	cp.Blocked = append([]GoroutineInfo(nil), r.Blocked...)
	cp.Goroutines = append([]GoroutineInfo(nil), r.Goroutines...)
	cp.Panics = append([]PanicInfo(nil), r.Panics...)
	cp.CheckFailures = append([]string(nil), r.CheckFailures...)
	return &cp
}

func (rt *runtime) checkFail(g *G, msg string) {
	rt.checkFailures = append(rt.checkFailures,
		fmt.Sprintf("g%d(%s) step %d: %s", g.id, g.name, rt.step, msg))
}

// Duration re-exports time.Duration for virtual-time APIs so kernel code
// reads like ordinary Go.
type Duration = time.Duration
