package sim

import (
	"container/heap"
	"fmt"
	"time"

	"goconcbugs/internal/hb"
)

// Virtual time is discrete-event: it advances only when every goroutine is
// blocked or asleep, jumping to the earliest pending timer. This mirrors the
// paper's observation surface — what matters to the studied bugs is the
// *ordering* of timeouts against channel operations, which the seeded
// scheduler controls, not wall-clock accuracy.

type timerEntry struct {
	when    int64
	seq     int64
	fire    func()
	stopped bool
	index   int
}

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// scheduleTimer arms a timer entry at virtual time now+d (immediately for
// d <= 0, as time.NewTimer(0) fires at once — the Figure 12 bug).
func (rt *runtime) scheduleTimer(d time.Duration, fire func()) *timerEntry {
	rt.timerSeq++
	when := rt.now
	if d > 0 {
		when += int64(d)
	}
	e := &timerEntry{when: when, seq: rt.timerSeq, fire: fire}
	heap.Push(&rt.timers, e)
	return e
}

// fireDueTimers advances the virtual clock to the next pending timer and
// fires everything due at that instant. It returns whether any timer fired.
func (rt *runtime) fireDueTimers() bool {
	for rt.timers.Len() > 0 && rt.timers[0].stopped {
		heap.Pop(&rt.timers)
	}
	if rt.timers.Len() == 0 {
		return false
	}
	rt.now = rt.timers[0].when
	fired := false
	for rt.timers.Len() > 0 && rt.timers[0].when <= rt.now {
		e := heap.Pop(&rt.timers).(*timerEntry)
		if e.stopped {
			continue
		}
		rt.touchOp(ObjWorld, 0, true)
		e.fire()
		fired = true
	}
	return fired
}

// Sleep suspends the goroutine for d of virtual time, modeling both
// time.Sleep and a computation taking that long.
func (t *T) Sleep(d time.Duration) {
	g := t.g
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, "sleep")
	t.rt.scheduleTimer(d, func() { t.rt.unblock(g) })
	t.block(BlockSleep, fmt.Sprintf("sleep %v", d))
}

// Work is an alias for Sleep that reads better when modeling CPU-bound work
// (e.g. the fn() call in Figure 1's finishReq).
func (t *T) Work(d time.Duration) { t.Sleep(d) }

// Timer models time.Timer: created armed, delivering the fire time on C
// (capacity 1). "At the creation time of a Timer object, Go runtime
// (implicitly) starts a library-internal goroutine which starts timer
// countdown" (Section 6.1.2); here the runtime's timer heap plays that role,
// and NewTimer(0)'s immediate fire reproduces Figure 12.
type Timer struct {
	rt    *runtime
	C     Chan[int64]
	entry *timerEntry
	vc    hb.VC
	fired bool
}

// NewTimer creates and arms a timer.
func NewTimer(t *T, d time.Duration) *Timer {
	tm := &Timer{
		rt: t.rt,
		C:  Chan[int64]{core: t.rt.newChanCore(fmt.Sprintf("timer.C(%v)", d), 1)},
		vc: t.g.vc.Clone(),
	}
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, tm.C.core.name)
	t.g.tick()
	tm.arm(d)
	return tm
}

func (tm *Timer) arm(d time.Duration) {
	tm.fired = false
	tm.entry = tm.rt.scheduleTimer(d, func() {
		tm.fired = true
		tm.C.core.trySendFromRuntime(tm.vc, tm.rt.now)
	})
}

// Stop disarms the timer and reports whether it was still pending.
func (tm *Timer) Stop(t *T) bool {
	t.yield()
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, tm.C.core.name)
	if tm.entry == nil || tm.entry.stopped || tm.fired {
		return false
	}
	tm.entry.stopped = true
	return true
}

// Reset re-arms the timer for d, capturing the caller's clock for the
// happens-before edge to the eventual receive.
func (tm *Timer) Reset(t *T, d time.Duration) {
	t.yield()
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, tm.C.core.name)
	if tm.entry != nil {
		tm.entry.stopped = true
	}
	tm.vc = t.g.vc.Clone()
	t.g.tick()
	tm.arm(d)
}

// After returns a channel that delivers once after d, like time.After.
func After(t *T, d time.Duration) Chan[int64] {
	return NewTimer(t, d).C
}

// Ticker models time.Ticker: C delivers every interval; ticks are dropped
// when C is full, as in real Go.
type Ticker struct {
	rt       *runtime
	C        Chan[int64]
	interval time.Duration
	entry    *timerEntry
	vc       hb.VC
	stopped  bool
	// Fires bounds the number of ticks so server loops quiesce; 0 means
	// DefaultTickerFires.
	fires int
}

// DefaultTickerFires bounds how many times a Ticker fires in one run, so
// programs built around ticker loops reach quiescence.
const DefaultTickerFires = 32

// NewTicker creates a ticker firing every d.
func NewTicker(t *T, d time.Duration) *Ticker {
	return NewTickerN(t, d, 0)
}

// NewTickerN creates a ticker that fires at most n times (0 = default).
func NewTickerN(t *T, d time.Duration, n int) *Ticker {
	if d <= 0 {
		t.Panicf("non-positive interval for NewTicker")
	}
	if n <= 0 {
		n = DefaultTickerFires
	}
	tk := &Ticker{
		rt:       t.rt,
		C:        Chan[int64]{core: t.rt.newChanCore(fmt.Sprintf("ticker.C(%v)", d), 1)},
		interval: d,
		vc:       t.g.vc.Clone(),
		fires:    n,
	}
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, tk.C.core.name)
	t.g.tick()
	tk.arm()
	return tk
}

func (tk *Ticker) arm() {
	tk.entry = tk.rt.scheduleTimer(tk.interval, func() {
		if tk.stopped || tk.fires <= 0 {
			return
		}
		tk.fires--
		tk.C.core.trySendFromRuntime(tk.vc, tk.rt.now)
		if tk.fires > 0 {
			tk.arm()
		}
	})
}

// Stop stops the ticker.
func (tk *Ticker) Stop(t *T) {
	t.yield()
	t.touch(ObjWorld, 0, true)
	t.fault(SiteTimer, tk.C.core.name)
	tk.stopped = true
	if tk.entry != nil {
		tk.entry.stopped = true
	}
}
