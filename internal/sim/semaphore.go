package sim

import "fmt"

// Semaphore models the buffered-channel counting semaphore of Go practice
// ("A buffered channel can be used like a semaphore, for instance to limit
// throughput" — Effective Go), the idiom several studied applications use
// for concurrency limiting. Misusing it — acquiring without releasing on an
// error path — starves later acquirers, a Chan-class blocking bug.
type Semaphore struct {
	tokens Chan[struct{}]
	name   string
}

// NewSemaphore creates a semaphore admitting n concurrent holders.
func NewSemaphore(t *T, name string, n int) *Semaphore {
	if n <= 0 {
		t.Panicf("sim: semaphore %q with non-positive capacity %d", name, n)
	}
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("semaphore#%d", t.rt.nextSyncID)
	}
	return &Semaphore{
		tokens: Chan[struct{}]{core: t.rt.newChanCore(name+".tokens", n)},
		name:   name,
	}
}

// Acquire takes a slot, blocking while n holders are active.
func (s *Semaphore) Acquire(t *T) {
	t.fault(SiteSemaphore, s.name)
	s.tokens.Send(t, struct{}{})
}

// TryAcquire takes a slot if one is free, without blocking.
func (s *Semaphore) TryAcquire(t *T) bool {
	t.fault(SiteSemaphore, s.name)
	ok := false
	Select(t,
		OnSend(s.tokens, struct{}{}, func() { ok = true }),
		Default(nil),
	)
	return ok
}

// Release frees a slot; releasing more than was acquired panics, as the
// channel idiom would misbehave silently and the library refuses to.
func (s *Semaphore) Release(t *T) {
	t.fault(SiteSemaphore, s.name)
	got := false
	Select(t,
		OnRecv(s.tokens, func(struct{}, bool) { got = true }),
		Default(nil),
	)
	if !got {
		t.Panicf("sim: release of un-acquired semaphore %s", s.name)
	}
}

// Holders reports the number of currently held slots.
func (s *Semaphore) Holders() int { return s.tokens.Len() }

// Name returns the semaphore's report name.
func (s *Semaphore) Name() string { return s.name }
