package sim

import "testing"

// A Broadcast with no waiter parked is a no-op — it must neither panic nor
// wake anything retroactively, exactly like sync.Cond.
func TestCondBroadcastZeroWaiters(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		c := NewCond(tt, mu, "c")
		mu.Lock(tt)
		c.Broadcast(tt)
		mu.Unlock(tt)
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", res.Outcome)
	}
	if len(res.Leaked) != 0 {
		t.Fatalf("leaked = %+v, want none", res.Leaked)
	}
}

// Signals are not queued: one delivered before any waiter parks is lost, and
// a Wait that starts afterwards parks forever (the paper's missed-signal
// shape, Section 5.1.1). The leaked goroutine must be reported blocked on
// the cond, not on its mutex.
func TestCondSignalBeforeWaitIsLost(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		c := NewCond(tt, mu, "c")
		mu.Lock(tt)
		c.Signal(tt) // no waiter yet: lost
		mu.Unlock(tt)
		tt.Go(func(ct *T) {
			mu.Lock(ct)
			c.Wait(ct) // parks after the only signal; sleeps forever
			mu.Unlock(ct)
		})
		tt.Sleep(10)
	})
	if len(res.Leaked) != 1 || res.Leaked[0].BlockKind != BlockCond {
		t.Fatalf("leaked = %+v, want one goroutine blocked on the cond", res.Leaked)
	}
}

// The non-buggy ordering: a waiter that parks first is woken by a later
// Signal, and a second Signal with the waiter already gone is a no-op.
func TestCondWaitThenSignalWakes(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		c := NewCond(tt, mu, "c")
		woke := NewAtomicInt64(tt, "woke")
		tt.Go(func(ct *T) {
			mu.Lock(ct)
			c.Wait(ct)
			mu.Unlock(ct)
			woke.Store(ct, 1)
		})
		tt.Sleep(5) // let the waiter park
		mu.Lock(tt)
		c.Signal(tt)
		c.Signal(tt) // second signal: no waiter left, must be a no-op
		mu.Unlock(tt)
		tt.Sleep(5)
		tt.Check(woke.Load(tt) == 1, "waiter did not wake after Signal")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
	if len(res.Leaked) != 0 {
		t.Fatalf("leaked = %+v, want none", res.Leaked)
	}
}
