package sim

import (
	"encoding/json"
	"io"
)

// Chrome-trace export: Result traces render in chrome://tracing (or
// Perfetto) as one row per goroutine, which is how hard-to-read
// interleavings — the etcd#7816-style tangles the paper describes
// reproducing with inserted sleeps — become visible at a glance.

// chromeEvent is the Trace Event Format's complete-event ("X") record.
type chromeEvent struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TS       int64          `json:"ts"`  // microseconds
	Dur      int64          `json:"dur"` // microseconds
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// WriteChromeTrace renders the run's event trace (Config.Trace must have
// been set) in the Chrome Trace Event Format. Steps are used as the time
// axis — virtual time stalls while goroutines compute, but every event
// occupies one step, which draws a readable staircase of the interleaving.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	var records []any
	for _, g := range r.Goroutines {
		records = append(records, chromeMeta{
			Name: "thread_name", Phase: "M", PID: 1, TID: g.ID,
			Args: map[string]any{"name": g.Name},
		})
	}
	for _, e := range r.Trace {
		rec := chromeEvent{
			Name: e.Op + " " + e.Obj, Category: "sim", Phase: "X",
			TS: e.Step, Dur: 1, PID: 1, TID: e.G,
		}
		if e.Detail != "" {
			rec.Args = map[string]any{"detail": e.Detail, "vtime": e.Time}
		}
		records = append(records, rec)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     records,
	})
}
