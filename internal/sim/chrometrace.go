package sim

import (
	"io"
	"strconv"

	"goconcbugs/internal/event"
)

// Chrome-trace export: runs render in chrome://tracing (or Perfetto) as one
// row per goroutine, which is how hard-to-read interleavings — the
// etcd#7816-style tangles the paper describes reproducing with inserted
// sleeps — become visible at a glance.
//
// ChromeTraceSink streams the Trace Event Format as the run executes: each
// event is rendered straight into a reused byte buffer (no intermediate
// strings, no reflection-based JSON encoding) that drains to the writer
// whenever it fills, so a run's peak memory no longer scales with its trace
// length the way the old materialize-then-encode exporter did.

const chromeFlushSize = 32 << 10

// ChromeTraceSink writes a run incrementally in the Chrome Trace Event
// Format. Steps are used as the time axis — virtual time stalls while
// goroutines compute, but every event occupies one step, which draws a
// readable staircase of the interleaving. Check Err after the run; write
// failures make the sink go quiet rather than disturb the simulation.
type ChromeTraceSink struct {
	w     io.Writer
	buf   []byte
	err   error
	wrote bool   // at least one record emitted: the next needs a comma
	named []bool // goroutine ids that already got a thread_name record
}

// NewChromeTraceSink creates a streaming sink writing to w. The JSON
// document is completed and flushed by RunEnd.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	s := &ChromeTraceSink{w: w, buf: make([]byte, 0, chromeFlushSize+1024)}
	s.buf = append(s.buf, `{"displayTimeUnit":"ms","traceEvents":[`...)
	return s
}

// Kinds implements event.Sink: the same kinds the human-readable trace
// renders.
func (s *ChromeTraceSink) Kinds() []event.Kind {
	out := make([]event.Kind, 0, len(traceKindOps))
	for k := range traceKindOps {
		out = append(out, k)
	}
	return out
}

// Event implements event.Sink.
func (s *ChromeTraceSink) Event(ev *event.Event) {
	if s.err != nil {
		return
	}
	s.thread(ev.G, ev.GName)
	if ev.Kind == event.GoSpawn {
		// Name the child's row up front; its first own event may be late.
		s.thread(ev.Aux, ev.Obj)
	}
	s.sep()
	s.buf = append(s.buf, `{"name":"`...)
	s.buf = appendJSONChars(s.buf, traceKindOps[ev.Kind])
	s.buf = append(s.buf, ' ')
	s.buf = appendJSONChars(s.buf, ev.Obj)
	s.buf = append(s.buf, `","cat":"sim","ph":"X","ts":`...)
	s.buf = strconv.AppendInt(s.buf, ev.Step, 10)
	s.buf = append(s.buf, `,"dur":1,"pid":1,"tid":`...)
	s.buf = strconv.AppendInt(s.buf, int64(ev.G), 10)
	s.appendArgs(ev)
	s.buf = append(s.buf, '}')
	if len(s.buf) >= chromeFlushSize {
		s.flush()
	}
}

// appendArgs renders the args object when the event has a detail, deriving
// the same annotations the human-readable trace shows (hand-off partners,
// WaitGroup arithmetic) without going through fmt.
func (s *ChromeTraceSink) appendArgs(ev *event.Event) {
	open := func() { s.buf = append(s.buf, `,"args":{"detail":"`...) }
	switch {
	case ev.Kind == event.ChanSendDone && ev.Aux != 0:
		open()
		s.buf = append(s.buf, "handoff to g"...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.Aux), 10)
	case ev.Kind == event.ChanRecvDone && ev.Aux != 0:
		open()
		s.buf = append(s.buf, "rendezvous with g"...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.Aux), 10)
	case ev.Kind == event.MutexTryLock:
		open()
		s.buf = append(s.buf, "acquired"...)
	case ev.Kind == event.WGAdd:
		open()
		if ev.Delta >= 0 {
			s.buf = append(s.buf, '+')
		}
		s.buf = strconv.AppendInt(s.buf, int64(ev.Delta), 10)
		s.buf = append(s.buf, " -> "...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.Counter), 10)
	case ev.Kind == event.WGDone:
		open()
		s.buf = append(s.buf, "-> "...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.Counter), 10)
	case ev.Detail != "":
		open()
		s.buf = appendJSONChars(s.buf, ev.Detail)
	default:
		return
	}
	s.buf = append(s.buf, `","vtime":`...)
	s.buf = strconv.AppendInt(s.buf, ev.Time, 10)
	s.buf = append(s.buf, '}')
}

// RunEnd implements event.RunEnder: it closes the JSON document and flushes
// everything buffered.
func (s *ChromeTraceSink) RunEnd() {
	if s.err != nil {
		return
	}
	s.buf = append(s.buf, "]}\n"...)
	s.flush()
}

// Err returns the first write error, if any.
func (s *ChromeTraceSink) Err() error { return s.err }

// thread emits the one-time thread_name metadata record for a goroutine row.
func (s *ChromeTraceSink) thread(tid int, name string) {
	for len(s.named) <= tid {
		s.named = append(s.named, false)
	}
	if s.named[tid] {
		return
	}
	s.named[tid] = true
	s.sep()
	s.buf = append(s.buf, `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
	s.buf = strconv.AppendInt(s.buf, int64(tid), 10)
	s.buf = append(s.buf, `,"args":{"name":"`...)
	s.buf = appendJSONChars(s.buf, name)
	s.buf = append(s.buf, `"}}`...)
}

func (s *ChromeTraceSink) sep() {
	if s.wrote {
		s.buf = append(s.buf, ',')
	}
	s.wrote = true
}

func (s *ChromeTraceSink) flush() {
	if len(s.buf) == 0 {
		return
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
	s.buf = s.buf[:0]
}

// appendJSONChars appends str with JSON string escaping (quotes,
// backslashes, control characters); the caller supplies the surrounding
// quotes.
func appendJSONChars(buf []byte, str string) []byte {
	for i := 0; i < len(str); i++ {
		c := str[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return buf
}
