package sim

import "testing"

// Stop after the timer has fired returns false — the expired-timer drain
// idiom (`if !t.Stop() { <-t.C }`) depends on it — and the fired value
// stays buffered in C.
func TestTimerStopAfterFire(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 5)
		tt.Sleep(10) // virtual clock passes the deadline; the timer fires
		tt.Check(!tm.Stop(tt), "Stop after fire reported the timer still pending")
		tt.Check(tm.C.Len() == 1, "fired value not buffered in C")
		tm.C.Recv(tt) // drain; must not block
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", res.Outcome)
	}
}

// Stop before the deadline disarms: it returns true and nothing is ever
// delivered on C.
func TestTimerStopBeforeFire(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 50)
		tt.Check(tm.Stop(tt), "Stop before the deadline reported already-fired")
		tt.Sleep(100)
		tt.Check(tm.C.Len() == 0, "stopped timer still delivered")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

// Reset racing a concurrent receiver: whichever way the schedule orders the
// old deadline against the Reset, the receiver gets exactly one value per
// arming that was allowed to complete, never a duplicate from the disarmed
// entry. Explored across seeds to cover both orderings.
func TestTimerResetRace(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		res := Run(Config{Seed: seed}, func(tt *T) {
			tm := NewTimer(tt, 5)
			got := NewAtomicInt64(tt, "got")
			tt.Go(func(ct *T) {
				tm.C.Recv(ct)
				got.Add(ct, 1)
			})
			tm.Reset(tt, 3) // may land before or after the first fire
			tt.Sleep(50)
			tt.Check(got.Load(tt) == 1, "receiver must see exactly one delivery")
			tt.Check(tm.C.Len() == 0, "stale delivery left buffered after Reset")
		})
		if res.Failed() {
			t.Fatalf("seed %d failed: %+v", seed, res.CheckFailures)
		}
		if len(res.Leaked) != 0 {
			t.Fatalf("seed %d leaked: %+v", seed, res.Leaked)
		}
	}
}

// Reset after a fire re-arms for a second delivery, as time.Timer does once
// the first value is drained.
func TestTimerResetAfterFireRedelivers(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 5)
		tt.Sleep(10)
		tm.C.Recv(tt)
		tm.Reset(tt, 5)
		tt.Sleep(10)
		tt.Check(tm.C.Len() == 1, "reset timer did not fire again")
		tm.C.Recv(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}
