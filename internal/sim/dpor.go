package sim

// Scheduling metadata for dynamic partial-order reduction (package explore).
//
// The systematic explorer enumerates schedules by replaying decision
// sequences through Config.Chooser. Plain DFS over those decisions explores
// every interleaving — including the astronomically many that differ only in
// the order of *independent* steps (two goroutines touching disjoint
// objects). To prune those, the explorer needs to know, for every scheduler
// transition, which goroutine ran and which objects it touched. This file is
// that reporting channel: a per-choice event hook that costs nothing when
// unset (a nil check per dispatch) and, when set, streams one SchedStep per
// transition plus one SelectPoint per ready-select decision.
//
// A transition is everything a goroutine does between being picked by the
// scheduler and handing the CPU back: every primitive operation starts with
// a yield, so a transition is exactly one operation attempt (a send, a lock
// acquisition that may block, a shared-variable access, ...). The footprint
// of a transition is the set of objects that operation examines or mutates,
// reported conservatively: any two transitions of different goroutines with
// disjoint footprints commute (executing them in either order reaches the
// same state and neither disables the other), which is the independence
// relation partial-order reduction is built on.

// ObjClass classifies the object a footprint entry refers to. IDs are only
// comparable within a class.
type ObjClass uint8

const (
	// ObjVar: an instrumented Var; ID is VarMeta.ID. Loads report
	// Write=false, so concurrent readers stay independent.
	ObjVar ObjClass = iota
	// ObjChan: a chanCore-backed object (channels, and the semaphore,
	// pipe, and context libraries built on them); ID is the channel id.
	// Nil-channel operations report ID 0 — a distinct object nothing else
	// touches, which is exact: a nil-channel operation commutes with
	// everything (it only parks its own goroutine forever).
	ObjChan
	// ObjSync: a mutex, rwmutex, waitgroup, once, cond, atomic, or map
	// variable; ID is the runtime's nextSyncID number.
	ObjSync
	// ObjSpawn: goroutine creation; ID is the child goroutine id. Nothing
	// else ever touches this object — the entry exists so the explorer can
	// root the child's causal clock in the spawning transition.
	ObjSpawn
	// ObjWorld: virtual time. Timer and ticker API calls and scheduler-
	// driven timer fires all touch this single object, making every
	// time-driven transition conservatively dependent on every other.
	ObjWorld
)

// OpRef is one footprint entry: an object the transition examined or
// mutated. Write=false is only reported for operations that commute with
// each other on the same object (Var and atomic loads).
type OpRef struct {
	Class ObjClass
	ID    int
	Write bool
}

// SchedStep describes one completed scheduler transition.
type SchedStep struct {
	// G is the goroutine that executed the transition.
	G int
	// Decision is the index of the Chooser call that picked G (the same
	// numbering as the explorer's recorded decision sequence), or -1 when
	// the pick was forced (a single runnable goroutine, or no Chooser).
	Decision int
	// OptionGs lists the runnable goroutine ids the pick chose among, in
	// the scheduler's option order. Preferred indexes the option that
	// continues the previously running goroutine (-1 when none).
	OptionGs  []int
	Preferred int
	// Ops is the transition's object footprint, in program order.
	Ops []OpRef
}

// DPORObserver receives the scheduling metadata stream of one run. All
// slices in the callbacks are reused by the runtime: clone what must be
// retained. Callbacks fire on the simulated program's host goroutines,
// strictly serially (the runtime's direct-handoff discipline guarantees a
// single transition is in flight at any moment).
type DPORObserver interface {
	// Step is invoked when a transition completes — at the next scheduler
	// pick, or once from Run's caller when the run ends.
	Step(st SchedStep)
	// SelectPoint is invoked when a ready select consumed Chooser decision
	// index dec to choose among ncases ready cases; the decision belongs
	// to goroutine g's transition currently in flight.
	SelectPoint(g, dec, ncases int)
}

// dporState is the runtime's accumulator for the in-flight transition.
type dporState struct {
	obs     DPORObserver
	active  bool // a transition is in flight
	pending SchedStep
	gids    []int // backing for pending.OptionGs
	ops     []OpRef
}

// dporBegin opens a new transition record after the scheduler picked g.
// decision is the Chooser call index consumed by the pick, -1 when forced.
func (rt *runtime) dporBegin(g *G, decision int, runnable []*G, preferred int) {
	d := rt.dpor
	d.flush()
	d.gids = d.gids[:0]
	for _, r := range runnable {
		d.gids = append(d.gids, r.id)
	}
	d.ops = d.ops[:0]
	d.pending = SchedStep{
		G: g.id, Decision: decision, OptionGs: d.gids, Preferred: preferred,
	}
	d.active = true
}

// flush delivers the in-flight transition, if any.
func (d *dporState) flush() {
	if d == nil || !d.active {
		return
	}
	d.active = false
	d.pending.Ops = d.ops
	d.obs.Step(d.pending)
}

// touch appends one footprint entry to the goroutine's in-flight transition.
// It is called by every primitive operation immediately after its scheduling
// yield, and is a no-op when no DPOR observer is configured.
func (t *T) touch(cls ObjClass, id int, write bool) {
	t.rt.touchOp(cls, id, write)
}

// touchOp is touch from runtime context (timer fires attribute their effect
// to whichever transition is in flight).
func (rt *runtime) touchOp(cls ObjClass, id int, write bool) {
	d := rt.dpor
	if d == nil || !d.active {
		return
	}
	d.ops = append(d.ops, OpRef{Class: cls, ID: id, Write: write})
}

// dporSelect reports a ready-select decision.
func (t *T) dporSelect(dec, ncases int) {
	if d := t.rt.dpor; d != nil && dec >= 0 {
		d.obs.SelectPoint(t.g.id, dec, ncases)
	}
}
