package sim

import "goconcbugs/internal/hb"

// Synchronization-event monitoring. Section 7 of the paper proposes "a
// novel dynamic technique [that] can try to enforce such rules and detect
// violation at runtime" — the channel and WaitGroup usage rules whose
// violation causes many of the studied bugs. The runtime emits a structured
// event at every rule-relevant operation; package vet implements the
// monitor. The types here are the legacy monitor surface: the runtime now
// emits event.Event values and MonitorSink (adapters.go) translates them
// into SyncEvents for existing Monitor implementations.

// SyncOp identifies the operation an event describes.
type SyncOp int

// Sync operations surfaced to monitors.
const (
	OpChanSend SyncOp = iota
	OpChanRecv
	OpChanClose
	OpChanCloseClosed // close of an already-closed channel (about to panic)
	OpChanSendClosed  // send on a closed channel (about to panic)
	OpChanNil         // operation on a nil channel (blocks forever)
	OpSelectBlocking  // select without default, about to park
	OpWGAdd
	OpWGDone
	OpWGWaitStart
	OpWGWaitEnd
	OpWGNegative // counter went negative (about to panic)
	OpMutexLock
	OpMutexUnlock
	OpOnceDo
	OpCondWait
	OpCondSignal
)

// String implements fmt.Stringer.
func (op SyncOp) String() string {
	names := map[SyncOp]string{
		OpChanSend: "chan-send", OpChanRecv: "chan-recv", OpChanClose: "chan-close",
		OpChanCloseClosed: "chan-close-closed", OpChanSendClosed: "chan-send-closed",
		OpChanNil: "chan-nil", OpSelectBlocking: "select-blocking",
		OpWGAdd: "wg-add", OpWGDone: "wg-done", OpWGWaitStart: "wg-wait-start",
		OpWGWaitEnd: "wg-wait-end", OpWGNegative: "wg-negative",
		OpMutexLock: "mutex-lock", OpMutexUnlock: "mutex-unlock",
		OpOnceDo: "once-do", OpCondWait: "cond-wait", OpCondSignal: "cond-signal",
	}
	if s, ok := names[op]; ok {
		return s
	}
	return "sync-op"
}

// SyncEvent is one monitored operation. VC is the acting goroutine's live
// clock — monitors must not retain it (clone when needed). HeldLocks lists
// the mutex names the goroutine holds at the instant of the operation,
// which is how a monitor spots channel operations inside critical sections
// (the Figure 7 blocking pattern).
type SyncEvent struct {
	Op        SyncOp
	G         int
	GName     string
	Obj       string
	VC        hb.VC
	Counter   int // WaitGroup counter after the operation
	Delta     int // WaitGroup Add delta
	HeldLocks []string
	Step      int64
}

// Monitor receives every synchronization event of a run.
type Monitor interface {
	SyncEvent(ev SyncEvent)
}
