package sim

import "testing"

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	res := Run(Config{Seed: 4}, func(tt *T) {
		sem := NewSemaphore(tt, "sem", 2)
		inside := NewAtomicInt64(tt, "inside")
		tooMany := NewAtomicInt64(tt, "tooMany")
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 5)
		for i := 0; i < 5; i++ {
			tt.Go(func(ct *T) {
				sem.Acquire(ct)
				if inside.Add(ct, 1) > 2 {
					tooMany.Store(ct, 1)
				}
				ct.Sleep(5)
				inside.Add(ct, -1)
				sem.Release(ct)
				wg.Done(ct)
			})
		}
		wg.Wait(tt)
		tt.Check(tooMany.Load(tt) == 0, "more than 2 holders inside")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		sem := NewSemaphore(tt, "sem", 1)
		tt.Check(sem.TryAcquire(tt), "first try should win")
		tt.Check(!sem.TryAcquire(tt), "second try should fail")
		sem.Release(tt)
		tt.Check(sem.TryAcquire(tt), "try after release should win")
		sem.Release(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		sem := NewSemaphore(tt, "sem", 1)
		sem.Release(tt)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestSemaphoreLeakStarvesAcquirers(t *testing.T) {
	// The blocking misuse: an error path skips Release.
	res := Run(Config{Seed: 1}, func(tt *T) {
		sem := NewSemaphore(tt, "sem", 1)
		tt.Go(func(ct *T) {
			sem.Acquire(ct)
			// error path: returns without Release
		})
		tt.Go(func(ct *T) {
			ct.Sleep(5)
			sem.Acquire(ct) // starves forever
			sem.Release(ct)
		})
		tt.Sleep(50)
	})
	if len(res.Leaked) != 1 || res.Leaked[0].BlockKind != BlockChanSend {
		t.Fatalf("leaked = %+v", res.Leaked)
	}
}

func TestSemaphoreZeroCapacityPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		NewSemaphore(tt, "bad", 0)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}
