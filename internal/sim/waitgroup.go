package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// WaitGroup models sync.WaitGroup. The paper discusses two misuse families:
// calling Wait where it blocks Done from ever running (blocking,
// Figure 5 / Docker#25384), and failing to order Add before Wait
// (non-blocking, Figure 9 / etcd): "There is an underlying rule when using
// WaitGroup, which is that Add has to be invoked before Wait"
// (Section 6.1.1). This model reproduces both: Wait returns immediately when
// the counter is zero at its linearization point, so a late Add is simply
// not waited for.
type WaitGroup struct {
	rt      *runtime
	id      int
	autoID  int
	name    string
	counter int
	waiters []*G
	vcDone  hb.VC // clocks published by Done calls
}

// NewWaitGroup creates a wait group, recycling a pooled one when available.
func NewWaitGroup(t *T, name string) *WaitGroup {
	rt := t.rt
	rt.nextSyncID++
	id := rt.nextSyncID
	wg, recycled := arenaGet[WaitGroup](rt)
	if recycled {
		wg.counter = 0
		wg.waiters = wg.waiters[:0]
		wg.vcDone.Reset()
	}
	if name == "" {
		if !recycled || wg.autoID != id {
			wg.name = fmt.Sprintf("waitgroup#%d", id)
		}
		wg.autoID = id
	} else {
		wg.name = name
		wg.autoID = 0
	}
	wg.rt, wg.id = rt, id
	return wg
}

// Add adds delta to the counter, panicking if the counter goes negative.
func (wg *WaitGroup) Add(t *T, delta int) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	t.fault(SiteWaitGroup, wg.name)
	wg.counter += delta
	if t.rt.wants(event.WGAdd) {
		t.rt.emit(t.g, event.Event{Kind: event.WGAdd, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Delta: delta})
	}
	if wg.counter < 0 {
		if t.rt.wants(event.WGNegative) {
			t.rt.emit(t.g, event.Event{Kind: event.WGNegative, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Delta: delta})
		}
		t.Panicf("sync: negative WaitGroup counter on %s", wg.name)
	}
	if wg.counter == 0 {
		wg.release()
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done(t *T) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	t.fault(SiteWaitGroup, wg.name)
	wg.counter--
	wg.vcDone.Join(t.g.vc)
	t.g.tick()
	if t.rt.wants(event.WGDone) {
		t.rt.emit(t.g, event.Event{Kind: event.WGDone, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Delta: -1})
	}
	if wg.counter < 0 {
		if t.rt.wants(event.WGNegative) {
			t.rt.emit(t.g, event.Event{Kind: event.WGNegative, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Delta: -1})
		}
		t.Panicf("sync: negative WaitGroup counter on %s", wg.name)
	}
	if wg.counter == 0 {
		wg.release()
	}
}

// Wait blocks until the counter is zero. If it already is, Wait returns at
// once — which is exactly why an Add racing with Wait is a bug.
func (wg *WaitGroup) Wait(t *T) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	t.fault(SiteWaitGroup, wg.name)
	if t.rt.wants(event.WGWaitStart) {
		t.rt.emit(t.g, event.Event{Kind: event.WGWaitStart, Obj: wg.name, ObjID: wg.id, Counter: wg.counter})
	}
	if wg.counter == 0 {
		t.g.vc.Join(wg.vcDone)
		if t.rt.wants(event.WGWaitEnd) {
			t.rt.emit(t.g, event.Event{Kind: event.WGWaitEnd, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Detail: "immediate"})
		}
		return
	}
	wg.waiters = append(wg.waiters, t.g)
	t.block(BlockWaitGroup, wg.name)
	if t.rt.wants(event.WGWaitEnd) {
		t.rt.emit(t.g, event.Event{Kind: event.WGWaitEnd, Obj: wg.name, ObjID: wg.id, Counter: wg.counter, Detail: "released"})
	}
}

func (wg *WaitGroup) release() {
	for i, g := range wg.waiters {
		g.vc.Join(wg.vcDone)
		wg.rt.unblock(g)
		wg.waiters[i] = nil
	}
	wg.waiters = wg.waiters[:0]
}

// Counter returns the current counter value (for tests).
func (wg *WaitGroup) Counter() int { return wg.counter }

// Name returns the wait group's report name.
func (wg *WaitGroup) Name() string { return wg.name }
