package sim

import (
	"fmt"

	"goconcbugs/internal/hb"
)

// WaitGroup models sync.WaitGroup. The paper discusses two misuse families:
// calling Wait where it blocks Done from ever running (blocking,
// Figure 5 / Docker#25384), and failing to order Add before Wait
// (non-blocking, Figure 9 / etcd): "There is an underlying rule when using
// WaitGroup, which is that Add has to be invoked before Wait"
// (Section 6.1.1). This model reproduces both: Wait returns immediately when
// the counter is zero at its linearization point, so a late Add is simply
// not waited for.
type WaitGroup struct {
	rt      *runtime
	id      int
	name    string
	counter int
	waiters []*G
	vcDone  hb.VC // clocks published by Done calls
}

// NewWaitGroup creates a wait group.
func NewWaitGroup(t *T, name string) *WaitGroup {
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("waitgroup#%d", t.rt.nextSyncID)
	}
	return &WaitGroup{rt: t.rt, id: t.rt.nextSyncID, name: name, vcDone: hb.New()}
}

// Add adds delta to the counter, panicking if the counter goes negative.
func (wg *WaitGroup) Add(t *T, delta int) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	wg.counter += delta
	wg.rt.event(t.g, "wg-add", wg.name, fmt.Sprintf("%+d -> %d", delta, wg.counter))
	t.emitSync(OpWGAdd, wg.name, wg.counter, delta)
	if wg.counter < 0 {
		t.emitSync(OpWGNegative, wg.name, wg.counter, delta)
		t.Panicf("sync: negative WaitGroup counter on %s", wg.name)
	}
	if wg.counter == 0 {
		wg.release()
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done(t *T) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	wg.counter--
	wg.vcDone.Join(t.g.vc)
	t.g.tick()
	wg.rt.event(t.g, "wg-done", wg.name, fmt.Sprintf("-> %d", wg.counter))
	t.emitSync(OpWGDone, wg.name, wg.counter, -1)
	if wg.counter < 0 {
		t.emitSync(OpWGNegative, wg.name, wg.counter, -1)
		t.Panicf("sync: negative WaitGroup counter on %s", wg.name)
	}
	if wg.counter == 0 {
		wg.release()
	}
}

// Wait blocks until the counter is zero. If it already is, Wait returns at
// once — which is exactly why an Add racing with Wait is a bug.
func (wg *WaitGroup) Wait(t *T) {
	t.yield()
	t.touch(ObjSync, wg.id, true)
	t.emitSync(OpWGWaitStart, wg.name, wg.counter, 0)
	if wg.counter == 0 {
		t.g.vc.Join(wg.vcDone)
		wg.rt.event(t.g, "wg-wait", wg.name, "immediate")
		t.emitSync(OpWGWaitEnd, wg.name, wg.counter, 0)
		return
	}
	wg.waiters = append(wg.waiters, t.g)
	t.block(BlockWaitGroup, wg.name)
	wg.rt.event(t.g, "wg-wait", wg.name, "released")
	t.emitSync(OpWGWaitEnd, wg.name, wg.counter, 0)
}

func (wg *WaitGroup) release() {
	for _, g := range wg.waiters {
		g.vc.Join(wg.vcDone)
		wg.rt.unblock(g)
	}
	wg.waiters = nil
}

// Counter returns the current counter value (for tests).
func (wg *WaitGroup) Counter() int { return wg.counter }

// Name returns the wait group's report name.
func (wg *WaitGroup) Name() string { return wg.name }
