package sim

import "goconcbugs/internal/event"

// Scheduling metadata for dynamic partial-order reduction (package explore).
//
// The systematic explorer enumerates schedules by replaying decision
// sequences through Config.Chooser. Plain DFS over those decisions explores
// every interleaving — including the astronomically many that differ only in
// the order of *independent* steps (two goroutines touching disjoint
// objects). To prune those, the explorer needs to know, for every scheduler
// transition, which goroutine ran and which objects it touched. This file is
// that reporting channel: when some sink subscribes to event.Sched, the
// runtime accumulates each transition's object footprint and emits one
// SchedStep event per transition (plus one SelectReady event per
// ready-select decision, emitted from select.go). Unsubscribed, the whole
// machinery is a nil check per dispatch.
//
// A transition is everything a goroutine does between being picked by the
// scheduler and handing the CPU back: every primitive operation starts with
// a yield, so a transition is exactly one operation attempt (a send, a lock
// acquisition that may block, a shared-variable access, ...). The footprint
// of a transition is the set of objects that operation examines or mutates,
// reported conservatively: any two transitions of different goroutines with
// disjoint footprints commute (executing them in either order reaches the
// same state and neither disables the other), which is the independence
// relation partial-order reduction is built on.
//
// The payload types live in package event so any sink can consume them;
// the aliases below keep the sim-qualified names working.

// ObjClass classifies the object a footprint entry refers to; see
// event.ObjClass for the class semantics.
type ObjClass = event.ObjClass

// The footprint object classes, re-exported for sim-qualified use.
const (
	ObjVar   = event.ObjVar
	ObjChan  = event.ObjChan
	ObjSync  = event.ObjSync
	ObjSpawn = event.ObjSpawn
	ObjWorld = event.ObjWorld
)

// OpRef is one footprint entry: an object the transition examined or
// mutated.
type OpRef = event.OpRef

// SchedStep describes one completed scheduler transition.
type SchedStep = event.SchedStep

// schedState is the runtime's accumulator for the in-flight transition,
// allocated only when some sink wants SchedStep events.
type schedState struct {
	active  bool // a transition is in flight
	pending SchedStep
	gids    []int // backing for pending.OptionGs
	ops     []OpRef
}

// reset clears the accumulator for a new pooled run, keeping the slice
// backings.
func (s *schedState) reset() {
	s.active = false
	s.pending = SchedStep{}
	s.gids = s.gids[:0]
	s.ops = s.ops[:0]
}

// schedBegin opens a new transition record after the scheduler picked g.
// decision is the Chooser call index consumed by the pick, -1 when forced.
func (rt *runtime) schedBegin(g *G, decision int, runnable []*G, preferred int) {
	rt.schedFlush()
	s := rt.sched
	s.gids = s.gids[:0]
	for _, r := range runnable {
		s.gids = append(s.gids, r.id)
	}
	s.ops = s.ops[:0]
	s.pending = SchedStep{
		G: g.id, Decision: decision, OptionGs: s.gids, Preferred: preferred,
	}
	s.active = true
}

// schedFlush emits the in-flight transition, if any — at the next scheduler
// pick, or once from finalize when the run ends. The event fires from
// scheduler context: its header carries the executing goroutine's identity
// but no live clock or lock set (the goroutine may already have exited).
func (rt *runtime) schedFlush() {
	s := rt.sched
	if s == nil || !s.active {
		return
	}
	s.active = false
	s.pending.Ops = s.ops
	rt.scratch = event.Event{
		Kind: event.Sched, Step: rt.step, Time: rt.now,
		G: s.pending.G, GName: rt.gs[s.pending.G-1].name,
		Sched: &s.pending,
	}
	rt.mux.Emit(&rt.scratch)
}

// touch appends one footprint entry to the goroutine's in-flight transition.
// It is called by every primitive operation immediately after its scheduling
// yield, and is a no-op when nobody subscribed to SchedStep events.
func (t *T) touch(cls ObjClass, id int, write bool) {
	t.rt.touchOp(cls, id, write)
}

// touchOp is touch from runtime context (timer fires attribute their effect
// to whichever transition is in flight).
func (rt *runtime) touchOp(cls ObjClass, id int, write bool) {
	s := rt.sched
	if s == nil || !s.active {
		return
	}
	s.ops = append(s.ops, OpRef{Class: cls, ID: id, Write: write})
}

// selectReady emits the SelectReady event for a ready select that consumed
// Chooser decision dec to pick among ncases ready cases.
func (t *T) selectReady(dec, ncases int) {
	if dec >= 0 && t.rt.wants(event.SelectReady) {
		t.rt.emit(t.g, event.Event{
			Kind: event.SelectReady, Obj: "select", Dec: dec, Counter: ncases,
		})
	}
}
