package sim

import (
	"errors"
	"fmt"
)

// Pipe models io.Pipe, the messaging library the paper calls out: "Pipe is
// designed to stream data between a Reader and a Writer... if a Pipe is not
// closed, a goroutine can be blocked when it tries to send data to or pull
// data from the unclosed Pipe" (Sections 2.3 and 5.1.2). Like io.Pipe it is
// fully synchronous: each Write blocks until a Read consumes it.

// Pipe errors, mirroring io.
var (
	ErrClosedPipe = errors.New("io: read/write on closed pipe")
	ErrEOF        = errors.New("EOF")
)

// PipeReader is the read side of a pipe.
type PipeReader struct{ p *pipeCore }

// PipeWriter is the write side of a pipe.
type PipeWriter struct{ p *pipeCore }

type pipeCore struct {
	rt      *runtime
	name    string
	data    Chan[[]byte]
	rclosed Chan[struct{}]
	wclosed Chan[struct{}]
}

// NewPipe creates a synchronous in-memory pipe.
func NewPipe(t *T, name string) (*PipeReader, *PipeWriter) {
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("pipe#%d", t.rt.nextSyncID)
	}
	p := &pipeCore{
		rt:      t.rt,
		name:    name,
		data:    Chan[[]byte]{core: t.rt.newChanCore(name+".data", 0)},
		rclosed: Chan[struct{}]{core: t.rt.newChanCore(name+".rclosed", 0)},
		wclosed: Chan[struct{}]{core: t.rt.newChanCore(name+".wclosed", 0)},
	}
	return &PipeReader{p: p}, &PipeWriter{p: p}
}

// Write sends buf to the reader, blocking until it is consumed or either
// end closes.
func (w *PipeWriter) Write(t *T, buf []byte) (int, error) {
	t.fault(SitePipe, w.p.name)
	t.g.blockKindOverride = BlockPipe
	defer func() { t.g.blockKindOverride = BlockNone }()
	var err error
	n := 0
	Select(t,
		OnSend(w.p.data, buf, func() { n = len(buf) }),
		OnRecv(w.p.rclosed, func(struct{}, bool) { err = ErrClosedPipe }),
		OnRecv(w.p.wclosed, func(struct{}, bool) { err = ErrClosedPipe }),
	)
	return n, err
}

// Close closes the write side; subsequent reads return EOF.
func (w *PipeWriter) Close(t *T) error {
	w.p.wclosed.core.closeFromRuntime(t.g.vc)
	t.g.tick()
	t.Yield()
	return nil
}

// Read receives the next chunk, blocking until a writer supplies one or the
// pipe closes.
func (r *PipeReader) Read(t *T) ([]byte, error) {
	t.fault(SitePipe, r.p.name)
	t.g.blockKindOverride = BlockPipe
	defer func() { t.g.blockKindOverride = BlockNone }()
	var out []byte
	var err error
	Select(t,
		OnRecv(r.p.data, func(b []byte, ok bool) { out = b }),
		OnRecv(r.p.wclosed, func(struct{}, bool) { err = ErrEOF }),
		OnRecv(r.p.rclosed, func(struct{}, bool) { err = ErrClosedPipe }),
	)
	return out, err
}

// Close closes the read side; subsequent writes fail with ErrClosedPipe.
func (r *PipeReader) Close(t *T) error {
	r.p.rclosed.core.closeFromRuntime(t.g.vc)
	t.g.tick()
	t.Yield()
	return nil
}
