package sim

import (
	"strings"
	"testing"
)

// Coverage of the reporting surface: names, string forms, counters, and the
// check-failure path itself — the parts detectors and reports rely on.

func TestCheckFailureRecordsContext(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tt.Check(false, "invariant broken")
		tt.Checkf(false, "value was %d", 7)
		tt.Fail("explicit failure")
	})
	if len(res.CheckFailures) != 3 {
		t.Fatalf("failures = %v", res.CheckFailures)
	}
	for _, f := range res.CheckFailures {
		if !strings.Contains(f, "g1(main)") {
			t.Fatalf("failure lacks goroutine context: %q", f)
		}
	}
	if !strings.Contains(res.CheckFailures[1], "value was 7") {
		t.Fatalf("Checkf did not format: %q", res.CheckFailures[1])
	}
}

func TestNamesAndAccessors(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		if tt.ID() != 1 || tt.Name() != "main" {
			tt.Fail("main identity wrong")
		}
		mu := NewMutex(tt, "mu")
		mu.Lock(tt)
		if mu.Holder() != 1 || mu.Name() != "mu" {
			tt.Fail("mutex accessors wrong")
		}
		mu.Unlock(tt)
		if mu.Holder() != 0 {
			tt.Fail("holder after unlock")
		}
		rw := NewRWMutex(tt, "rw")
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 1)
		if wg.Counter() != 1 || wg.Name() != "wg" {
			tt.Fail("waitgroup accessors wrong")
		}
		wg.Done(tt)
		once := NewOnce(tt, "once")
		if once.Done() {
			tt.Fail("once done before Do")
		}
		once.Do(tt, func(*T) {})
		if !once.Done() {
			tt.Fail("once not done after Do")
		}
		cond := NewCond(tt, mu, "cond")
		a := NewAtomicInt64(tt, "a")
		v := NewVar[int](tt, "v")
		m := NewMapVar[int, int](tt, "m")
		sem := NewSemaphore(tt, "sem", 2)
		sem.Acquire(tt)
		if sem.Holders() != 1 {
			tt.Fail("semaphore holders wrong")
		}
		sem.Release(tt)
		ch := NewChanNamed[int](tt, "ch", 3)
		ch.Send(tt, 1)
		if ch.Len() != 1 || ch.Cap() != 3 || ch.Name() != "ch" {
			tt.Fail("channel accessors wrong")
		}
		ctx := Background(tt)
		for _, name := range []string{rw.Name(), cond.Name(), a.Name(), v.Name(), m.Name(), sem.Name(), ctx.Name()} {
			if name == "" {
				tt.Fail("empty report name")
			}
		}
		if tt.VCSnapshot().Len() == 0 {
			tt.Fail("empty clock snapshot")
		}
	})
	if res.Failed() {
		t.Fatalf("failed: %v", res.CheckFailures)
	}
}

func TestAutoNamesAreGenerated(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		if NewMutex(tt, "").Name() == "" {
			tt.Fail("mutex auto-name empty")
		}
		if NewWaitGroup(tt, "").Name() == "" {
			tt.Fail("waitgroup auto-name empty")
		}
		if NewChan[int](tt, 0).Name() == "" {
			tt.Fail("chan auto-name empty")
		}
		if NewVar[int](tt, "").Name() == "" {
			tt.Fail("var auto-name empty")
		}
		if NewMapVar[int, int](tt, "").Name() == "" {
			tt.Fail("map auto-name empty")
		}
		if NewSemaphore(tt, "", 1).Name() == "" {
			tt.Fail("semaphore auto-name empty")
		}
	})
	if res.Failed() {
		t.Fatalf("failed: %v", res.CheckFailures)
	}
}

func TestStringForms(t *testing.T) {
	for _, o := range []Outcome{OutcomeOK, OutcomeBuiltinDeadlock, OutcomePanic, OutcomeStepLimit, Outcome(99)} {
		if o.String() == "" {
			t.Fatalf("Outcome(%d) has no string", int(o))
		}
	}
	for _, s := range []GState{GRunnable, GRunning, GBlocked, GDone, GPanicked, GAbandoned, GState(99)} {
		if s.String() == "" {
			t.Fatalf("GState(%d) has no string", int(s))
		}
	}
	kinds := []BlockKind{
		BlockNone, BlockChanSend, BlockChanRecv, BlockSelect, BlockMutex,
		BlockRWMutexR, BlockRWMutexW, BlockWaitGroup, BlockCond, BlockOnce,
		BlockSleep, BlockPipe, BlockExternal, BlockKind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("BlockKind(%d) has no string", int(k))
		}
	}
	ops := []SyncOp{
		OpChanSend, OpChanRecv, OpChanClose, OpChanCloseClosed, OpChanSendClosed,
		OpChanNil, OpSelectBlocking, OpWGAdd, OpWGDone, OpWGWaitStart,
		OpWGWaitEnd, OpWGNegative, OpMutexLock, OpMutexUnlock, OpOnceDo,
		OpCondWait, OpCondSignal, SyncOp(99),
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Fatalf("SyncOp(%d) has no string", int(op))
		}
	}
	e := Event{Step: 3, Time: 7, G: 1, GName: "main", Op: "send", Obj: "ch", Detail: "x"}
	if !strings.Contains(e.String(), "send ch") || !strings.Contains(e.String(), "[x]") {
		t.Fatalf("event string = %q", e.String())
	}
}

func TestWaitGroupNegativeAddPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, -1)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestCondSignalWakesExactlyOne(t *testing.T) {
	res := Run(Config{Seed: 6}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		cond := NewCond(tt, mu, "cond")
		woken := NewAtomicInt64(tt, "woken")
		for i := 0; i < 2; i++ {
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				cond.Wait(ct)
				woken.Add(ct, 1)
				mu.Unlock(ct)
			})
		}
		tt.Sleep(10)
		cond.Signal(tt)
		tt.Sleep(10)
		tt.Checkf(woken.Load(tt) == 1, "woken=%d after one Signal", woken.Load(tt))
		cond.Signal(tt)
		tt.Sleep(10)
		tt.Checkf(woken.Load(tt) == 2, "woken=%d after two Signals", woken.Load(tt))
	})
	if res.Failed() {
		t.Fatalf("failed: %v", res.CheckFailures)
	}
}

func TestTickerStopPreventsFurtherTicks(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tick := NewTicker(tt, 10)
		tick.C.Recv(tt) // first tick
		tick.Stop(tt)
		tt.Sleep(50)
		got := false
		Select(tt, OnRecv(tick.C, func(int64, bool) { got = true }), Default(nil))
		tt.Check(!got, "tick after Stop")
	})
	if res.Failed() {
		t.Fatalf("failed: %v", res.CheckFailures)
	}
}
