package sim

import (
	"strings"
	"testing"
)

func TestSelectSendOnClosedPanicsWhenChosen(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		ch.Close(tt)
		Select(tt, OnSend(ch, 1, nil))
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v, want panic", res.Outcome)
	}
}

func TestSelectOnNilChannelsOnlyBlocksForever(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tt.Go(func(ct *T) {
			Select(ct, OnRecv(NilChan[int](), nil))
		})
		tt.Sleep(10)
	})
	if len(res.Leaked) != 1 || res.Leaked[0].BlockKind != BlockSelect {
		t.Fatalf("leaked = %+v", res.Leaked)
	}
}

func TestSelectNilCaseNeverChosen(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		Run(Config{Seed: seed}, func(tt *T) {
			ready := NewChan[int](tt, 1)
			ready.Send(tt, 1)
			idx := Select(tt,
				OnRecv(NilChan[int](), nil),
				OnRecv(ready, nil),
			)
			tt.Checkf(idx == 1, "chose the nil case (%d)", idx)
		})
	}
}

func TestSelectBlockedThenWokenBySend(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		got := -1
		done := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			Select(ct, OnRecv(ch, func(v int, ok bool) { got = v }))
			done.Send(ct, struct{}{})
		})
		tt.Sleep(5)
		ch.Send(tt, 7)
		done.Recv(tt)
		tt.Checkf(got == 7, "got %d", got)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestSelectBlockedThenWokenByClose(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		var sawClose bool
		done := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			Select(ct, OnRecv(ch, func(v int, ok bool) { sawClose = !ok }))
			done.Send(ct, struct{}{})
		})
		tt.Sleep(5)
		ch.Close(tt)
		done.Recv(tt)
		tt.Check(sawClose, "blocked select should observe the close")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestRecvUnblocksBufferedSenderWaitingForSpace(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 1)
		ch.Send(tt, 1)
		done := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			ch.Send(ct, 2) // buffer full: parks until a recv frees space
			done.Send(ct, struct{}{})
		})
		tt.Sleep(5)
		v1, _ := ch.Recv(tt)
		done.Recv(tt)
		v2, _ := ch.Recv(tt)
		tt.Checkf(v1 == 1 && v2 == 2, "got %d, %d", v1, v2)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestMutexUnlockNotHeldPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		mu.Unlock(tt)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	res := Run(Config{Seed: 5}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		order := NewChan[int](tt, 4)
		mu.Lock(tt)
		for i := 1; i <= 3; i++ {
			i := i
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				order.Send(ct, i)
				mu.Unlock(ct)
			})
			tt.Sleep(1) // deterministic queueing order
		}
		mu.Unlock(tt)
		prev := 0
		for i := 0; i < 3; i++ {
			v, _ := order.Recv(tt)
			tt.Checkf(v == prev+1, "handoff order %d after %d", v, prev)
			prev = v
		}
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestTryLock(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		tt.Check(mu.TryLock(tt), "first TryLock should win")
		tt.Check(!mu.TryLock(tt), "second TryLock should fail")
		mu.Unlock(tt)
		tt.Check(mu.TryLock(tt), "TryLock after unlock should win")
		mu.Unlock(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestRWMutexRUnlockWithoutRLockPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		rw := NewRWMutex(tt, "rw")
		rw.RUnlock(tt)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestRWMutexWriterThenQueuedReadersProceedTogether(t *testing.T) {
	res := Run(Config{Seed: 2}, func(tt *T) {
		rw := NewRWMutex(tt, "rw")
		inside := NewAtomicInt64(tt, "inside")
		overlapped := NewAtomicInt64(tt, "overlapped")
		rw.Lock(tt)
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 2)
		for i := 0; i < 2; i++ {
			tt.Go(func(ct *T) {
				rw.RLock(ct)
				inside.Add(ct, 1)
				ct.Sleep(5)
				if inside.Load(ct) == 2 {
					overlapped.Store(ct, 1) // monotone flag: no lost update
				}
				inside.Add(ct, -1)
				rw.RUnlock(ct)
				wg.Done(ct)
			})
		}
		tt.Sleep(3) // both readers queue behind the writer
		rw.Unlock(tt)
		wg.Wait(tt)
		tt.Check(overlapped.Load(tt) == 1, "queued readers never shared the lock")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	res := Run(Config{Seed: 3}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		cond := NewCond(tt, mu, "cond")
		ready := NewVarInit(tt, "ready", false)
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 3)
		for i := 0; i < 3; i++ {
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				for !ready.Load(ct) {
					cond.Wait(ct)
				}
				mu.Unlock(ct)
				wg.Done(ct)
			})
		}
		tt.Sleep(10)
		mu.Lock(tt)
		ready.Store(tt, true)
		mu.Unlock(tt)
		cond.Broadcast(tt)
		wg.Wait(tt)
	})
	if res.Failed() || len(res.Leaked) > 0 {
		t.Fatalf("failed: checks=%v leaked=%v", res.CheckFailures, res.Leaked)
	}
}

func TestCondWaitWithoutMutexPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		cond := NewCond(tt, mu, "cond")
		cond.Wait(tt) // mutex not held
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestAtomicCAS(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		a := NewAtomicInt64(tt, "a")
		tt.Check(a.CompareAndSwap(tt, 0, 5), "CAS from zero should win")
		tt.Check(!a.CompareAndSwap(tt, 0, 9), "stale CAS should fail")
		tt.Checkf(a.Load(tt) == 5, "value %d", a.Load(tt))
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 50)
		tt.Check(tm.Stop(tt), "Stop before fire should report pending")
		tt.Sleep(100)
		fired := false
		Select(tt,
			OnRecv(tm.C, func(int64, bool) { fired = true }),
			Default(nil),
		)
		tt.Check(!fired, "stopped timer fired anyway")
		tt.Check(!tm.Stop(tt), "second Stop should report not pending")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestTimerResetPostponesFire(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 10)
		tm.Reset(tt, 100)
		tt.Sleep(50)
		fired := false
		Select(tt, OnRecv(tm.C, func(int64, bool) { fired = true }), Default(nil))
		tt.Check(!fired, "reset timer fired at the old deadline")
		tt.Sleep(100)
		Select(tt, OnRecv(tm.C, func(int64, bool) { fired = true }), Default(nil))
		tt.Check(fired, "reset timer never fired at the new deadline")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestTickerDropsTicksWhenSlow(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tick := NewTickerN(tt, 10, 5)
		tt.Sleep(60) // all 5 fires happen; only 1 fits the buffer
		n := 0
		for {
			got := false
			Select(tt,
				OnRecv(tick.C, func(int64, bool) { got = true }),
				Default(nil),
			)
			if !got {
				break
			}
			n++
		}
		tt.Checkf(n == 1, "buffered ticks = %d, want 1 (ticks are dropped when C is full)", n)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestContextParentCancelPropagates(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		parent, pcancel := WithCancel(tt, Background(tt))
		child, ccancel := WithCancel(tt, parent)
		defer ccancel(tt)
		done := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			child.Done().Recv(ct)
			ct.Check(child.Err() != nil, "child err after parent cancel")
			done.Send(ct, struct{}{})
		})
		tt.Sleep(5)
		pcancel(tt)
		done.Recv(tt)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestContextValueLookupWalksChain(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		root := Background(tt)
		a := WithValue(tt, root, "user", "alice")
		b := WithValue(tt, a, "trace", "xyz")
		tt.Check(b.Value("user") == "alice", "inherited value")
		tt.Check(b.Value("trace") == "xyz", "own value")
		tt.Check(b.Value("missing") == nil, "missing value")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestPipeWriteAfterReaderClose(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		r, w := NewPipe(tt, "p")
		r.Close(tt)
		_, err := w.Write(tt, []byte("x"))
		tt.Check(err == ErrClosedPipe, "write after reader close should fail")
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestPipeCloseUnblocksPendingWriter(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		r, w := NewPipe(tt, "p")
		errCh := NewChan[bool](tt, 1)
		tt.Go(func(ct *T) {
			_, err := w.Write(ct, []byte("x")) // blocks: no reader yet
			errCh.Send(ct, err == ErrClosedPipe)
		})
		tt.Sleep(5)
		r.Close(tt)
		failedWithClosed, _ := errCh.Recv(tt)
		tt.Check(failedWithClosed, "pending write should fail when the reader closes")
	})
	if res.Failed() || len(res.Leaked) > 0 {
		t.Fatalf("failed: checks=%v leaked=%v", res.CheckFailures, res.Leaked)
	}
}

func TestDeadlockReportMentionsBlockedGoroutines(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "store.mu")
		mu.Lock(tt)
		mu.Lock(tt)
	})
	if !strings.Contains(res.DeadlockReport, "store.mu") ||
		!strings.Contains(res.DeadlockReport, "sync.Mutex.Lock") {
		t.Fatalf("report = %q", res.DeadlockReport)
	}
}

func TestPanicRecordsGoroutineAndMessage(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tt.GoNamed("closer", func(ct *T) {
			ch := NewChanNamed[int](ct, "events", 0)
			ch.Close(ct)
			ch.Close(ct)
		})
		tt.Sleep(10)
	})
	if len(res.Panics) != 1 {
		t.Fatalf("panics = %+v", res.Panics)
	}
	p := res.Panics[0]
	if p.Name != "closer" || !strings.Contains(p.Msg, "events") {
		t.Fatalf("panic = %+v", p)
	}
}

func TestVirtualTimeAdvancesOnlyViaTimers(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		start := tt.Now()
		for i := 0; i < 100; i++ {
			tt.Yield()
		}
		tt.Checkf(tt.Now() == start, "yields advanced the clock to %d", tt.Now())
		tt.Sleep(25)
		tt.Checkf(tt.Now() == start+25, "clock = %d, want %d", tt.Now(), start+25)
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}
