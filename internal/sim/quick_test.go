package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests: random (but deadlock-free by construction) programs
// generated from a seed, checked against runtime invariants.

// pipelineSpec describes a random producer/consumer program.
type pipelineSpec struct {
	producers int
	consumers int
	perProd   int
	capacity  int
	useMutex  bool
	sleeps    bool
}

func genSpec(r *rand.Rand) pipelineSpec {
	producers := 1 + r.Intn(4)
	perProd := 1 + r.Intn(6)
	return pipelineSpec{
		producers: producers,
		consumers: 1 + r.Intn(3),
		perProd:   perProd,
		capacity:  r.Intn(producers*perProd + 1),
		useMutex:  r.Intn(2) == 0,
		sleeps:    r.Intn(2) == 0,
	}
}

// runPipeline builds and runs the random program; it returns the run result
// plus the counted receipts.
func runPipeline(seed int64, spec pipelineSpec) (*Result, int) {
	total := spec.producers * spec.perProd
	received := 0
	res := Run(Config{Seed: seed}, func(t *T) {
		ch := NewChan[int](t, spec.capacity)
		mu := NewMutex(t, "mu")
		count := NewVarInit(t, "count", 0)
		wg := NewWaitGroup(t, "wg")
		wg.Add(t, spec.producers+spec.consumers)
		for p := 0; p < spec.producers; p++ {
			p := p
			t.Go(func(ct *T) {
				for i := 0; i < spec.perProd; i++ {
					if spec.sleeps {
						ct.Sleep(Duration(ct.Rand(5)))
					}
					ch.Send(ct, p*1000+i)
				}
				wg.Done(ct)
			})
		}
		per := total / spec.consumers
		extra := total % spec.consumers
		for c := 0; c < spec.consumers; c++ {
			n := per
			if c < extra {
				n++
			}
			t.Go(func(ct *T) {
				for i := 0; i < n; i++ {
					ch.Recv(ct)
					if spec.useMutex {
						mu.Lock(ct)
						count.Store(ct, count.Load(ct)+1)
						mu.Unlock(ct)
					}
				}
				wg.Done(ct)
			})
		}
		wg.Wait(t)
		if spec.useMutex {
			mu.Lock(t)
			received = count.Load(t)
			mu.Unlock(t)
		} else {
			received = total
		}
	})
	return res, received
}

// TestPipelineAlwaysCompletes: a well-formed pipeline never leaks,
// deadlocks, or panics, for any structure and any schedule.
func TestPipelineAlwaysCompletes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := genSpec(r)
		res, received := runPipeline(seed, spec)
		return res.Outcome == OutcomeOK && len(res.Leaked) == 0 &&
			len(res.Panics) == 0 && received == spec.producers*spec.perProd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineDeterministic: the same seed gives the same step count and
// outcome for the same random program.
func TestPipelineDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := genSpec(r)
		a, _ := runPipeline(seed, spec)
		b, _ := runPipeline(seed, spec)
		return a.Steps == b.Steps && a.Outcome == b.Outcome &&
			a.VirtualTime == b.VirtualTime && a.GoroutinesCreated == b.GoroutinesCreated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestGoroutineAccounting: every created goroutine ends in a terminal state
// and the records are complete.
func TestGoroutineAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := genSpec(r)
		res, _ := runPipeline(seed, spec)
		if len(res.Goroutines) != res.GoroutinesCreated {
			return false
		}
		for _, g := range res.Goroutines {
			if g.State != GDone {
				return false
			}
			if g.EndTime < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestChannelFIFO: a single-producer single-consumer channel preserves send
// order for any capacity and schedule.
func TestChannelFIFO(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw % 8)
		ok := true
		Run(Config{Seed: seed}, func(t *T) {
			ch := NewChan[int](t, capacity)
			const n = 12
			t.Go(func(ct *T) {
				for i := 0; i < n; i++ {
					if ct.Rand(2) == 0 {
						ct.Sleep(Duration(ct.Rand(4)))
					}
					ch.Send(ct, i)
				}
			})
			last := -1
			for i := 0; i < n; i++ {
				v, _ := ch.Recv(t)
				if v != last+1 {
					ok = false
				}
				last = v
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMutexMutualExclusion: no two goroutines are ever inside the critical
// section together, for random contention patterns.
func TestMutexMutualExclusion(t *testing.T) {
	f := func(seed int64) bool {
		violated := false
		Run(Config{Seed: seed}, func(t *T) {
			r := rand.New(rand.NewSource(seed))
			mu := NewMutex(t, "mu")
			inside := NewVarInit(t, "inside", 0)
			wg := NewWaitGroup(t, "wg")
			n := 2 + r.Intn(4)
			wg.Add(t, n)
			for i := 0; i < n; i++ {
				t.Go(func(ct *T) {
					for j := 0; j < 3; j++ {
						mu.Lock(ct)
						inside.Store(ct, inside.Load(ct)+1)
						if inside.Load(ct) != 1 {
							violated = true
						}
						ct.Sleep(Duration(ct.Rand(3)))
						inside.Store(ct, inside.Load(ct)-1)
						mu.Unlock(ct)
					}
					wg.Done(ct)
				})
			}
			wg.Wait(t)
		})
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestOnceAtMostOnce: under random contention, the Once body runs exactly
// once and every caller observes its effect afterwards.
func TestOnceAtMostOnce(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		Run(Config{Seed: seed}, func(t *T) {
			once := NewOnce(t, "once")
			runs := NewAtomicInt64(t, "runs")
			ready := NewVarInit(t, "ready", false)
			wg := NewWaitGroup(t, "wg")
			wg.Add(t, 4)
			for i := 0; i < 4; i++ {
				t.Go(func(ct *T) {
					once.Do(ct, func(ot *T) {
						ot.Sleep(Duration(ot.Rand(4)))
						runs.Add(ot, 1)
						ready.Store(ot, true)
					})
					if !ready.Load(ct) {
						ok = false // Do returned before init completed
					}
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			if runs.Load(t) != 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualTimeMonotone: timers fire in order; a later Sleep never
// finishes before an earlier-started shorter one.
func TestVirtualTimeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		Run(Config{Seed: seed}, func(t *T) {
			r := rand.New(rand.NewSource(seed ^ 0x5a5a))
			order := NewChan[int](t, 16)
			delays := make([]int, 5)
			for i := range delays {
				delays[i] = 1 + r.Intn(50)
			}
			for i, d := range delays {
				i, d := i, d
				t.Go(func(ct *T) {
					ct.Sleep(Duration(d))
					order.Send(ct, i)
				})
			}
			prev := int64(-1)
			for range delays {
				idx, _ := order.Recv(t)
				when := int64(delays[idx])
				if when < prev {
					// An earlier deadline completed after a
					// strictly later one: broken clock.
					ok = false
				}
				if when > prev {
					prev = when
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
