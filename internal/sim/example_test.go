package sim_test

import (
	"fmt"

	"goconcbugs/internal/sim"
)

// ExampleRun shows the basic shape of a simulated program: the Figure 1 bug
// in miniature. The child's send has no receiver once the timeout path is
// taken, so the run ends with a leaked goroutine.
func ExampleRun() {
	res := sim.Run(sim.Config{Seed: 1}, func(t *sim.T) {
		ch := sim.NewChanNamed[int](t, "ch", 0)
		t.GoNamed("handler", func(ct *sim.T) {
			ct.Work(200) // fn() is slow
			ch.Send(ct, 42)
		})
		sim.Select(t,
			sim.OnRecv(ch, nil),
			sim.OnRecv(sim.After(t, 100), nil), // timeout wins
		)
	})
	fmt.Println("outcome:", res.Outcome)
	for _, g := range res.Leaked {
		fmt.Printf("leaked: %s blocked on %s\n", g.Name, g.BlockKind)
	}
	// Output:
	// outcome: ok
	// leaked: handler blocked on chan send
}

// ExampleRun_deadlock shows the built-in detector model firing on a
// whole-program deadlock (BoltDB#392's double lock).
func ExampleRun_deadlock() {
	res := sim.Run(sim.Config{Seed: 1}, func(t *sim.T) {
		mu := sim.NewMutex(t, "db.metalock")
		mu.Lock(t)
		mu.Lock(t) // not reentrant: blocks forever
	})
	fmt.Println("outcome:", res.Outcome)
	// Output:
	// outcome: builtin-deadlock
}

// ExampleSelect demonstrates select semantics: with both cases ready, the
// runtime chooses — here deterministically per seed.
func ExampleSelect() {
	res := sim.Run(sim.Config{Seed: 3}, func(t *sim.T) {
		a := sim.NewChan[string](t, 1)
		b := sim.NewChan[string](t, 1)
		a.Send(t, "a")
		b.Send(t, "b")
		sim.Select(t,
			sim.OnRecv(a, func(v string, ok bool) { fmt.Println("took", v) }),
			sim.OnRecv(b, func(v string, ok bool) { fmt.Println("took", v) }),
		)
	})
	_ = res
	// Output:
	// took a
}

// ExampleWaitGroup mirrors the sync.WaitGroup API.
func ExampleWaitGroup() {
	sim.Run(sim.Config{Seed: 1}, func(t *sim.T) {
		wg := sim.NewWaitGroup(t, "wg")
		sum := sim.NewAtomicInt64(t, "sum")
		wg.Add(t, 3)
		for i := 1; i <= 3; i++ {
			i := i
			t.Go(func(ct *sim.T) {
				sum.Add(ct, int64(i))
				wg.Done(ct)
			})
		}
		wg.Wait(t)
		fmt.Println("sum:", sum.Load(t))
	})
	// Output:
	// sum: 6
}
