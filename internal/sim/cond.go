package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Cond models sync.Cond. Signals are not queued: a Signal with no waiter is
// lost, so "one goroutine calls Cond.Wait(), but no other goroutines call
// Cond.Signal() after that" blocks forever (Section 5.1.1's Wait category).
type Cond struct {
	rt      *runtime
	id      int
	name    string
	mu      *Mutex
	waiters []*G
	vc      hb.VC
}

// NewCond creates a condition variable bound to mu.
func NewCond(t *T, mu *Mutex, name string) *Cond {
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("cond#%d", t.rt.nextSyncID)
	}
	return &Cond{rt: t.rt, id: t.rt.nextSyncID, name: name, mu: mu, vc: hb.New()}
}

// Wait atomically unlocks the mutex, parks, and re-locks on wakeup. The
// caller must hold the mutex.
func (c *Cond) Wait(t *T) {
	if c.mu.holder != t.g {
		t.Panicf("sync: Cond.Wait on %s without holding its mutex", c.name)
	}
	t.emitObj(event.CondWait, c.name)
	c.mu.Unlock(t)
	t.touch(ObjSync, c.id, true)
	if t.fault(SiteCond, c.name) == FaultWake {
		// Injected spurious wakeup: return without parking and without a
		// happens-before edge from any signaler. sync.Cond guarantees
		// Wait only returns after Signal/Broadcast, so code that guards
		// the predicate with `if` instead of `for` breaks here — which is
		// the point of the injection.
		t.yield()
		c.mu.Lock(t)
		return
	}
	c.waiters = append(c.waiters, t.g)
	t.block(BlockCond, c.name)
	t.g.vc.Join(c.vc)
	c.mu.Lock(t)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal(t *T) {
	t.yield()
	t.touch(ObjSync, c.id, true)
	t.touch(ObjSync, c.mu.id, true)
	t.fault(SiteCond, c.name)
	c.vc.Join(t.g.vc)
	t.g.tick()
	if t.rt.wants(event.CondSignal) {
		t.rt.emit(t.g, event.Event{Kind: event.CondSignal, Obj: c.name, ObjID: c.id, Counter: len(c.waiters)})
	}
	if len(c.waiters) == 0 {
		return
	}
	g := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.rt.unblock(g)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(t *T) {
	t.yield()
	t.touch(ObjSync, c.id, true)
	t.touch(ObjSync, c.mu.id, true)
	t.fault(SiteCond, c.name)
	c.vc.Join(t.g.vc)
	t.g.tick()
	t.emitObj(event.CondBroadcast, c.name)
	for _, g := range c.waiters {
		c.rt.unblock(g)
	}
	c.waiters = nil
}

// Name returns the condition variable's report name.
func (c *Cond) Name() string { return c.name }
