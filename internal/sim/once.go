package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Once models sync.Once (Section 2.2): Do executes f only on the first
// call; concurrent callers block until that first execution completes and
// then observe its effects (a happens-before edge).
type Once struct {
	rt      *runtime
	id      int
	autoID  int
	name    string
	state   int // 0 idle, 1 running, 2 done
	waiters []*G
	vc      hb.VC
}

// NewOnce creates a Once, recycling a pooled one when available.
func NewOnce(t *T, name string) *Once {
	rt := t.rt
	rt.nextSyncID++
	id := rt.nextSyncID
	o, recycled := arenaGet[Once](rt)
	if recycled {
		o.state = 0
		o.waiters = o.waiters[:0]
		o.vc.Reset()
	}
	if name == "" {
		if !recycled || o.autoID != id {
			o.name = fmt.Sprintf("once#%d", id)
		}
		o.autoID = id
	} else {
		o.name = name
		o.autoID = 0
	}
	o.rt, o.id = rt, id
	return o
}

// Do runs f if and only if this is the first Do call on o.
func (o *Once) Do(t *T, f func(t *T)) {
	t.yield()
	t.touch(ObjSync, o.id, true)
	t.fault(SiteOnce, o.name)
	switch o.state {
	case 2:
		t.g.vc.Join(o.vc)
		return
	case 1:
		o.waiters = append(o.waiters, t.g)
		t.block(BlockOnce, o.name)
		t.g.vc.Join(o.vc)
		return
	}
	o.state = 1
	t.emitObjDetail(event.OnceDo, o.name, "first")
	f(t)
	o.state = 2
	o.vc.Join(t.g.vc)
	t.g.tick()
	for i, g := range o.waiters {
		o.rt.unblock(g)
		o.waiters[i] = nil
	}
	o.waiters = o.waiters[:0]
}

// Done reports whether the Once has completed (for tests).
func (o *Once) Done() bool { return o.state == 2 }

// Name returns the Once's report name.
func (o *Once) Name() string { return o.name }
