package sim

import (
	"testing"

	"goconcbugs/internal/event"
)

func TestUnbufferedRendezvous(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { ch.Send(ct, 42) })
		v, ok := ch.Recv(tt)
		tt.Check(ok && v == 42, "expected 42")
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestBufferedChannelDoesNotBlockUnderCap(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 2)
		ch.Send(tt, 1)
		ch.Send(tt, 2)
		a, _ := ch.Recv(tt)
		b, _ := ch.Recv(tt)
		tt.Checkf(a == 1 && b == 2, "got %d %d", a, b)
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res)
	}
}

func TestRecvOnClosedChannel(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 1)
		ch.Send(tt, 7)
		ch.Close(tt)
		v, ok := ch.Recv(tt)
		tt.Check(ok && v == 7, "drain buffered value")
		_, ok = ch.Recv(tt)
		tt.Check(!ok, "closed channel should report !ok")
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res)
	}
}

func TestSendOnClosedChannelPanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		ch.Close(tt)
		ch.Send(tt, 1)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v, want panic", res.Outcome)
	}
}

func TestDoubleClosePanics(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		ch.Close(tt)
		ch.Close(tt)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v, want panic", res.Outcome)
	}
}

func TestBlockedSenderLeaks(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { ch.Send(ct, 1) }) // no receiver ever
		tt.Sleep(10)
	})
	if res.Outcome != OutcomeOK || len(res.Leaked) != 1 {
		t.Fatalf("outcome=%v leaked=%d, want ok with 1 leak", res.Outcome, len(res.Leaked))
	}
	if res.Leaked[0].BlockKind != BlockChanSend {
		t.Fatalf("leak kind = %v", res.Leaked[0].BlockKind)
	}
}

func TestBuiltinDeadlockAllAsleep(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		mu.Lock(tt)
		mu.Lock(tt) // self-deadlock, like BoltDB#392
	})
	if res.Outcome != OutcomeBuiltinDeadlock {
		t.Fatalf("outcome = %v, want builtin-deadlock", res.Outcome)
	}
}

func TestExternalWaitHidesDeadlockFromBuiltin(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		tt.Go(func(ct *T) { ct.BlockExternal("network peer") })
		mu.Lock(tt)
		mu.Lock(tt)
	})
	if res.Outcome == OutcomeBuiltinDeadlock {
		t.Fatalf("builtin detector should not see past external waits")
	}
	if len(res.Leaked) != 2 {
		t.Fatalf("leaked=%d, want 2", len(res.Leaked))
	}
}

func TestRWMutexWriterPriorityDeadlock(t *testing.T) {
	// Section 5.1.1: th-A RLock; th-B Lock (waits); th-A RLock again ->
	// both stuck because Go prioritizes the waiting writer.
	res := Run(Config{Seed: 1}, func(tt *T) {
		rw := NewRWMutex(tt, "rw")
		rw.RLock(tt)
		started := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			Select(ct, OnSend(started, struct{}{}, nil), Default(nil))
			rw.Lock(ct)
			rw.Unlock(ct)
		})
		tt.Sleep(5) // let the writer queue up
		rw.RLock(tt)
		rw.RUnlock(tt)
		rw.RUnlock(tt)
	})
	if res.Outcome != OutcomeBuiltinDeadlock {
		t.Fatalf("outcome = %v, want builtin-deadlock; leaked=%v", res.Outcome, res.Leaked)
	}
}

func TestRWMutexReadersShareAndWriterExcludes(t *testing.T) {
	res := Run(Config{Seed: 3}, func(tt *T) {
		rw := NewRWMutex(tt, "rw")
		inside := NewVar[int](tt, "inside")
		done := NewWaitGroup(tt, "wg")
		done.Add(tt, 3)
		for i := 0; i < 2; i++ {
			tt.Go(func(ct *T) {
				rw.RLock(ct)
				inside.Store(ct, inside.Load(ct)+1)
				ct.Sleep(10)
				inside.Store(ct, inside.Load(ct)-1)
				rw.RUnlock(ct)
				done.Done(ct)
			})
		}
		tt.Go(func(ct *T) {
			rw.Lock(ct)
			ct.Checkf(inside.Load(ct) == 0, "writer saw %d readers inside", inside.Load(ct))
			rw.Unlock(ct)
			done.Done(ct)
		})
		done.Wait(tt)
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestWaitGroupWaitsForAll(t *testing.T) {
	res := Run(Config{Seed: 2}, func(tt *T) {
		wg := NewWaitGroup(tt, "wg")
		count := NewAtomicInt64(tt, "count")
		n := 5
		wg.Add(tt, n)
		for i := 0; i < n; i++ {
			tt.Go(func(ct *T) {
				ct.Sleep(Duration(ct.Rand(20)))
				count.Add(ct, 1)
				wg.Done(ct)
			})
		}
		wg.Wait(tt)
		tt.Checkf(count.Load(tt) == int64(n), "count=%d", count.Load(tt))
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	res := Run(Config{Seed: 4}, func(tt *T) {
		once := NewOnce(tt, "once")
		runs := NewIntVar(tt, "runs")
		wg := NewWaitGroup(tt, "wg")
		wg.Add(tt, 4)
		for i := 0; i < 4; i++ {
			tt.Go(func(ct *T) {
				once.Do(ct, func(ot *T) {
					ot.Sleep(5)
					runs.Incr(ot, 1)
				})
				wg.Done(ct)
			})
		}
		wg.Wait(tt)
		tt.Checkf(runs.Load(tt) == 1, "f ran %d times", runs.Load(tt))
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestSelectDefault(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		idx := Select(tt,
			OnRecv(ch, nil),
			Default(nil),
		)
		tt.Checkf(idx == 1, "chose %d", idx)
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestSelectRandomAmongReady(t *testing.T) {
	chose := map[int]bool{}
	for seed := int64(0); seed < 32; seed++ {
		var got int
		Run(Config{Seed: seed}, func(tt *T) {
			a := NewChan[int](tt, 1)
			b := NewChan[int](tt, 1)
			a.Send(tt, 1)
			b.Send(tt, 2)
			got = Select(tt, OnRecv(a, nil), OnRecv(b, nil))
		})
		chose[got] = true
	}
	if !chose[0] || !chose[1] {
		t.Fatalf("select never varied its choice: %v", chose)
	}
}

func TestTimerFiresAndSelectTimesOut(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ch := NewChan[int](tt, 0)
		timedOut := false
		Select(tt,
			OnRecv(ch, nil),
			OnRecv(After(tt, 100), func(int64, bool) { timedOut = true }),
		)
		tt.Check(timedOut, "expected the timeout case")
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestZeroTimerFiresImmediately(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		tm := NewTimer(tt, 0)
		tt.Sleep(1)
		fired := false
		Select(tt,
			OnRecv(tm.C, func(int64, bool) { fired = true }),
			Default(nil),
		)
		tt.Check(fired, "NewTimer(0) must fire immediately (Figure 12)")
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestContextWithCancel(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ctx, cancel := WithCancel(tt, Background(tt))
		done := NewChan[struct{}](tt, 0)
		tt.Go(func(ct *T) {
			ctx.Done().Recv(ct)
			ct.Check(ctx.Err() == ErrCanceled, "err after cancel")
			done.Send(ct, struct{}{})
		})
		cancel(tt)
		done.Recv(tt)
	})
	if res.Failed() || len(res.Leaked) > 0 {
		t.Fatalf("unexpected failure: %+v leaked=%v", res.CheckFailures, res.Leaked)
	}
}

func TestContextWithTimeout(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ctx, cancel := WithTimeout(tt, Background(tt), 50)
		defer cancel(tt)
		ctx.Done().Recv(tt)
		tt.Check(ctx.Err() == ErrDeadlineExceeded, "deadline err")
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.CheckFailures)
	}
}

func TestPipeWriteBlocksWithoutReader(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		_, w := NewPipe(tt, "p")
		tt.Go(func(ct *T) { w.Write(ct, []byte("hello")) })
		tt.Sleep(10)
	})
	if len(res.Leaked) != 1 {
		t.Fatalf("leaked=%d, want 1", len(res.Leaked))
	}
}

func TestPipeRoundTripAndClose(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		r, w := NewPipe(tt, "p")
		tt.Go(func(ct *T) {
			w.Write(ct, []byte("hi"))
			w.Close(ct)
		})
		b, err := r.Read(tt)
		tt.Checkf(err == nil && string(b) == "hi", "read %q err=%v", b, err)
		_, err = r.Read(tt)
		tt.Check(err == ErrEOF, "EOF after writer close")
	})
	if res.Failed() || len(res.Leaked) > 0 {
		t.Fatalf("unexpected failure: %+v leaked=%v", res.CheckFailures, res.Leaked)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*Result, []Event) {
		tc := &TraceCollector{}
		res := Run(Config{Seed: 99, Sinks: []event.Sink{tc}}, func(tt *T) {
			ch := NewChan[int](tt, 1)
			wg := NewWaitGroup(tt, "wg")
			wg.Add(tt, 3)
			for i := 0; i < 3; i++ {
				i := i
				tt.Go(func(ct *T) {
					ct.Sleep(Duration(ct.Rand(10)))
					Select(ct,
						OnSend(ch, i, nil),
						Default(nil),
					)
					wg.Done(ct)
				})
			}
			wg.Wait(tt)
		})
		return res, tc.Events()
	}
	a, aTrace := run()
	b, bTrace := run()
	if a.Steps != b.Steps || len(aTrace) != len(bTrace) {
		t.Fatalf("non-deterministic: steps %d vs %d", a.Steps, b.Steps)
	}
	for i := range aTrace {
		if aTrace[i] != bTrace[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, aTrace[i], bTrace[i])
		}
	}
}

func TestStepLimitWithRunnableLoop(t *testing.T) {
	res := Run(Config{Seed: 1, MaxSteps: 500}, func(tt *T) {
		tt.Go(func(ct *T) {
			for {
				ct.Yield()
			}
		})
		ch := NewChan[int](tt, 0)
		ch.Recv(tt) // blocks forever while the loop keeps running
	})
	if res.Outcome != OutcomeStepLimit {
		t.Fatalf("outcome = %v, want step-limit", res.Outcome)
	}
	if len(res.Leaked) == 0 {
		t.Fatalf("the blocked receiver should be reported leaked")
	}
}

func TestNoHostGoroutineLeakAcrossRuns(t *testing.T) {
	// Each run tears down its parked goroutines; run many deadlocking
	// programs to give a leak a chance to show up as runaway growth.
	for seed := int64(0); seed < 50; seed++ {
		Run(Config{Seed: seed}, func(tt *T) {
			ch := NewChan[int](tt, 0)
			tt.Go(func(ct *T) { ch.Send(ct, 1) })
			tt.Go(func(ct *T) { ch.Send(ct, 2) })
			ch.Recv(tt)
		})
	}
}
