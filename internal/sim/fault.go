package sim

import (
	"fmt"

	"goconcbugs/internal/event"
)

// Fault injection hook points. The paper's bugs surface under rare timing
// and failure conditions — goroutines that stall or die mid-protocol,
// timeouts that fire at the worst moment, channels closed on error paths
// (Sections 5-6). An Injector attached via Config.Injector is consulted at
// every instrumented primitive operation and may perturb it. With no
// injector the hook is one nil check per operation.
//
// Fault semantics split into two soundness classes:
//
//   - FaultYield is benign: every primitive operation already begins with a
//     scheduling yield, so an extra yield at the same point re-runs the
//     scheduler against unchanged state — the set of reachable program
//     states is exactly the set reachable by ordinary scheduling. A program
//     that is correct on every schedule stays quiet under any amount of
//     yield injection, which is what makes the chaos gate ("fixed kernels
//     must stay quiet under -faults") sound.
//
//   - The aggressive actions change the program, not just its schedule:
//     FaultTimeout fires pending timers early (a timeout racing ahead of
//     runnable work), FaultWake is a spurious Cond wakeup (sync.Cond never
//     does this; code that guards Wait with `if` instead of `for` breaks),
//     FaultKill terminates the goroutine mid-protocol with its locks still
//     held, FaultPanic crashes the simulated process, and FaultClose closes
//     the channel out from under a send/receive. A correct program may
//     legitimately fail under these — they answer "what happens when a
//     participant dies or the world misbehaves", not "is there a bad
//     schedule".

// FaultSite identifies the instrumented primitive operation family being
// consulted. One site per modeled primitive — the 15 instrumented
// libraries of the runtime.
type FaultSite uint8

const (
	SiteChanSend FaultSite = iota
	SiteChanRecv
	SiteChanClose
	SiteSelect
	SiteMutex
	SiteRWMutex
	SiteWaitGroup
	SiteOnce
	SiteCond
	SiteVar
	SiteMap
	SiteAtomic
	SiteTimer
	SiteSemaphore
	SitePipe
	// NumFaultSites bounds the site space.
	NumFaultSites
)

var faultSiteNames = [NumFaultSites]string{
	SiteChanSend: "chan-send", SiteChanRecv: "chan-recv", SiteChanClose: "chan-close",
	SiteSelect: "select", SiteMutex: "mutex", SiteRWMutex: "rwmutex",
	SiteWaitGroup: "waitgroup", SiteOnce: "once", SiteCond: "cond",
	SiteVar: "var", SiteMap: "map", SiteAtomic: "atomic",
	SiteTimer: "timer", SiteSemaphore: "semaphore", SitePipe: "pipe",
}

// String implements fmt.Stringer.
func (s FaultSite) String() string {
	if s < NumFaultSites {
		return faultSiteNames[s]
	}
	return fmt.Sprintf("FaultSite(%d)", int(s))
}

// FaultAction is what an Injector asks the runtime to do at a consultation
// point.
type FaultAction uint8

const (
	// FaultNone: proceed normally.
	FaultNone FaultAction = iota
	// FaultYield: insert an extra scheduling yield (a pure schedule
	// perturbation — benign, see the package comment).
	FaultYield
	// FaultTimeout: advance virtual time to the earliest pending timer and
	// fire it, despite runnable goroutines — every runnable goroutine was
	// "too slow" and the timeout won.
	FaultTimeout
	// FaultWake: spuriously wake a Cond.Wait without a Signal (SiteCond
	// only; ignored elsewhere).
	FaultWake
	// FaultKill: the goroutine dies silently mid-protocol — it never
	// completes the operation, releases no locks, and sends no values.
	// Never applied to the main goroutine.
	FaultKill
	// FaultPanic: raise a simulated panic at the operation, crashing the
	// simulated process as an unrecovered panic would.
	FaultPanic
	// FaultClose: close the operation's channel out from under it
	// (SiteChanSend/SiteChanRecv only; ignored elsewhere) — the
	// close-on-error-path pattern.
	FaultClose
)

var faultActionNames = [...]string{
	FaultNone: "none", FaultYield: "yield", FaultTimeout: "timeout",
	FaultWake: "wake", FaultKill: "kill", FaultPanic: "panic",
	FaultClose: "close",
}

// String implements fmt.Stringer.
func (a FaultAction) String() string {
	if int(a) < len(faultActionNames) {
		return faultActionNames[a]
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// Injector decides, at every instrumented primitive operation, whether to
// perturb it. Consult receives the site, the acting goroutine id, and the
// operated object's report name; it returns the action to take (FaultNone
// almost always). Consultations happen at deterministic points of the run,
// in a deterministic order, so an injector that is a pure function of its
// own state and the consultation sequence keeps the whole run replayable.
// Package inject provides the standard seeded implementation with a
// recorded FaultPlan.
type Injector interface {
	Consult(site FaultSite, g int, obj string) FaultAction
}

// injectedKill is the panic sentinel for FaultKill, distinguished from
// teardown's killSentinel and from simulated panics in the goroutine
// wrapper's recover.
type injectedKill struct{ obj string }

// fault consults the configured injector at one operation site and applies
// the self-contained actions inline. It returns FaultNone when the caller
// has nothing further to do, or the action (FaultWake, FaultClose) the call
// site must implement itself. FaultKill and FaultPanic do not return.
func (t *T) fault(site FaultSite, obj string) FaultAction {
	inj := t.rt.cfg.Injector
	if inj == nil {
		return FaultNone
	}
	act := inj.Consult(site, t.g.id, obj)
	if act == FaultNone {
		return FaultNone
	}
	if act == FaultKill && t.g.id == 1 {
		// Killing main would model a program exit, not a stalled
		// participant; the standard injector never asks for it, and a
		// custom one asking is coerced to a delay.
		act = FaultYield
	}
	if t.rt.wants(event.FaultInject) {
		t.rt.emit(t.g, event.Event{
			Kind: event.FaultInject, Obj: obj,
			Detail: act.String(), Counter: int(site),
		})
	}
	switch act {
	case FaultYield:
		t.yield()
		return FaultNone
	case FaultTimeout:
		t.rt.fireDueTimers()
		t.yield()
		return FaultNone
	case FaultKill:
		panic(&injectedKill{obj: obj})
	case FaultPanic:
		panic(&simPanic{msg: "injected fault: panic at " + site.String() + " on " + obj})
	}
	return act
}
