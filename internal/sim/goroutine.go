package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// GState is the lifecycle state of a simulated goroutine.
type GState int

const (
	GRunnable GState = iota
	GRunning
	GBlocked
	GDone
	GPanicked
	// GAbandoned marks goroutines that were still live when the run was
	// torn down after a simulated crash.
	GAbandoned
	// GKilled marks goroutines terminated by an injected FaultKill: they
	// died mid-protocol, with any held locks left held and any pending
	// hand-offs never delivered. A killed goroutine is finished (not
	// blocked, not leaked); the damage it causes shows up in the
	// goroutines that waited on it.
	GKilled
)

// String implements fmt.Stringer.
func (s GState) String() string {
	switch s {
	case GRunnable:
		return "runnable"
	case GRunning:
		return "running"
	case GBlocked:
		return "blocked"
	case GDone:
		return "done"
	case GPanicked:
		return "panicked"
	case GAbandoned:
		return "abandoned"
	case GKilled:
		return "killed"
	default:
		return fmt.Sprintf("GState(%d)", int(s))
	}
}

// BlockKind identifies what a blocked goroutine is waiting on. The built-in
// deadlock detector model understands every kind except BlockExternal.
type BlockKind int

const (
	BlockNone BlockKind = iota
	BlockChanSend
	BlockChanRecv
	BlockSelect
	BlockMutex
	BlockRWMutexR
	BlockRWMutexW
	BlockWaitGroup
	BlockCond
	BlockOnce
	BlockSleep
	BlockPipe
	// BlockExternal models waiting for a resource outside the Go runtime
	// (network, another process); such waits are invisible to the
	// built-in detector (Section 5.3's second failure reason).
	BlockExternal
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case BlockNone:
		return "none"
	case BlockChanSend:
		return "chan send"
	case BlockChanRecv:
		return "chan receive"
	case BlockSelect:
		return "select"
	case BlockMutex:
		return "sync.Mutex.Lock"
	case BlockRWMutexR:
		return "sync.RWMutex.RLock"
	case BlockRWMutexW:
		return "sync.RWMutex.Lock"
	case BlockWaitGroup:
		return "sync.WaitGroup.Wait"
	case BlockCond:
		return "sync.Cond.Wait"
	case BlockOnce:
		return "sync.Once.Do"
	case BlockSleep:
		return "sleep"
	case BlockPipe:
		return "pipe"
	case BlockExternal:
		return "external resource"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

type blockInfo struct {
	kind BlockKind
	obj  string
}

// G is one simulated goroutine. With run pooling (RunPool), a G is a
// long-lived slot: the same G — and its parked host worker goroutine — is
// re-assigned a fresh identity by spawn on every run, so the resume channel,
// clock backing, held-locks backing, and name caches all survive across runs.
type G struct {
	id           int
	name         string
	state        GState
	finalState   GState
	block        blockInfo
	blockedSince int64
	createdStep  int64
	createdTime  int64
	endTime      int64
	resume       chan struct{}
	vc           hb.VC
	rt           *runtime
	// blockKindOverride relabels blocking inside library code built on
	// channels (Pipe) so reports attribute the wait to the library call.
	blockKindOverride BlockKind
	// held lists the lock names this goroutine currently holds, for
	// monitors that check channel-under-lock patterns.
	held []string
	// fn is the program body the worker loop runs when the first CPU token
	// arrives; t is the goroutine's embedded operation handle (one fewer
	// allocation per spawn, and a stable *T across pooled runs).
	fn Program
	t  T
	// childNames caches the auto-generated names T.Go hands to children,
	// keyed by the child's slot index; entry i is valid while the parent's
	// own name still matches parent. Across pooled runs of the same program
	// the spawn tree repeats exactly, so the Sprintf happens once ever.
	childNames []childName
}

type childName struct {
	parent string
	name   string
}

// holdLock records acquisition of a named lock.
func (g *G) holdLock(name string) { g.held = append(g.held, name) }

// releaseLock removes one occurrence of a named lock.
func (g *G) releaseLock(name string) {
	for i := len(g.held) - 1; i >= 0; i-- {
		if g.held[i] == name {
			g.held = append(g.held[:i], g.held[i+1:]...)
			return
		}
	}
}

func (g *G) info() GoroutineInfo {
	blockedSince := int64(-1)
	if g.finalState == GBlocked {
		blockedSince = g.blockedSince
	}
	return GoroutineInfo{
		ID:           g.id,
		Name:         g.name,
		State:        g.finalState,
		BlockKind:    g.block.kind,
		BlockObj:     g.block.obj,
		CreatedStep:  g.createdStep,
		CreatedTime:  g.createdTime,
		EndTime:      g.endTime,
		BlockedSince: blockedSince,
		HeldLocks:    append([]string(nil), g.held...),
	}
}

type killSentinelType struct{}

var killSentinel = killSentinelType{}

// simPanic is the panic value used for simulated runtime panics so the
// goroutine wrapper can distinguish them from host bugs.
type simPanic struct{ msg string }

// spawn creates (or, under run pooling, re-initializes) a simulated
// goroutine. The new goroutine is runnable but does not run until the
// scheduler picks it.
func (rt *runtime) spawn(name string, fn Program) *G {
	g := rt.allocG()
	g.id = len(rt.gs)
	g.name = name
	g.fn = fn
	g.state = GRunnable
	g.finalState = GRunnable
	g.block = blockInfo{}
	g.blockedSince = 0
	g.createdStep = rt.step
	g.createdTime = rt.now
	g.endTime = -1
	g.blockKindOverride = BlockNone
	g.held = g.held[:0]
	g.vc.Reset()
	g.vc.Tick(g.id)
	return g
}

// allocG returns the G for the next slot in rt.gs. Slot i of a pooled
// runtime always yields the same *G (and the same parked worker) run after
// run: reset trims rt.gs to length 0 but keeps the backing, so the pointers
// beyond the length survive and are picked back up here. A slot never
// recycles within one run — a finished goroutine keeps its record until
// finalize — so slot identity is exactly goroutine identity.
func (rt *runtime) allocG() *G {
	n := len(rt.gs)
	if n < cap(rt.gs) {
		rt.gs = rt.gs[:n+1]
		if g := rt.gs[n]; g != nil {
			return g
		}
	} else {
		rt.gs = append(rt.gs, nil)
	}
	g := &G{
		// The CPU token travels through resume; capacity 1 lets a waker
		// hand off and proceed to its own park without a rendezvous.
		resume: make(chan struct{}, 1),
		rt:     rt,
	}
	g.t = T{rt: rt, g: g}
	rt.gs[len(rt.gs)-1] = g
	go g.loop()
	return g
}

// loop is the persistent host worker behind one G slot. Each received token
// is the first CPU token of one assignment (one run's goroutine body, or a
// teardown kill for a goroutine that never got to run); the worker parks
// here between runs and exits when the runtime closes the channel
// (releaseWorkers / RunPool.Close).
func (g *G) loop() {
	for range g.resume {
		g.runAssigned()
	}
}

// runAssigned executes the goroutine body assigned by spawn, reproducing the
// exit protocol: hand the CPU token onward on normal or killed completion,
// handshake with teardown on a kill sentinel, and crash the simulated
// process on a simulated panic.
func (g *G) runAssigned() {
	rt := g.rt
	if rt.killing {
		g.finalState = GAbandoned
		rt.dead <- struct{}{}
		return
	}
	defer func() {
		r := recover()
		switch v := r.(type) {
		case nil:
			g.state = GDone
			g.finalState = GDone
			g.endTime = rt.now
			if rt.wants(event.GoExit) {
				rt.emit(g, event.Event{Kind: event.GoExit})
			}
			// Hand the CPU token onward; this worker then parks until
			// its next assignment.
			if next := rt.dispatch(); next != nil {
				rt.wake(next)
			} else {
				rt.endRun()
			}
		case killSentinelType:
			g.finalState = g.block.preTeardownState()
			rt.dead <- struct{}{}
		case *injectedKill:
			// An injected FaultKill: the goroutine dies silently
			// mid-protocol. Its held locks stay held and whatever
			// it was about to supply never arrives — the run
			// continues and the waiters' fate (deadlock, leak) is
			// the observation.
			g.state = GKilled
			g.finalState = GKilled
			g.endTime = rt.now
			if rt.wants(event.GoExit) {
				rt.emit(g, event.Event{Kind: event.GoExit, Obj: v.obj, Detail: "injected kill"})
			}
			if next := rt.dispatch(); next != nil {
				rt.wake(next)
			} else {
				rt.endRun()
			}
		case *simPanic:
			rt.panics = append(rt.panics, PanicInfo{
				G: g.id, Name: g.name, Msg: v.msg, Step: rt.step,
			})
			g.state = GPanicked
			g.finalState = GPanicked
			g.endTime = rt.now
			if rt.wants(event.GoPanic) {
				rt.emit(g, event.Event{Kind: event.GoPanic, Detail: v.msg})
			}
			// A simulated panic crashes the whole simulated
			// process, as an unrecovered panic would.
			rt.stopping = true
			rt.endRun()
		default:
			// A genuine bug in the harness or kernel code (a
			// non-simulated panic): record it and stop; Run
			// re-panics on the caller's goroutine so the host
			// test framework sees it in the right place.
			g.state = GPanicked
			g.finalState = GPanicked
			rt.hostPanic = r
			rt.stopping = true
			rt.endRun()
		}
	}()
	g.fn(&g.t)
}

// preTeardownState maps a block record to the state to report for a
// goroutine killed during teardown: blocked ones stay blocked (that is the
// observation we tore down around), runnable ones are abandoned.
func (b blockInfo) preTeardownState() GState {
	if b.kind != BlockNone {
		return GBlocked
	}
	return GAbandoned
}

// T is the per-goroutine handle every simulated operation takes, analogous
// to the implicit current-goroutine context in real Go.
type T struct {
	rt *runtime
	g  *G
}

// ID returns the simulated goroutine's id (main is 1).
func (t *T) ID() int { return t.g.id }

// Name returns the simulated goroutine's name.
func (t *T) Name() string { return t.g.name }

// Now returns the current virtual time in nanoseconds.
func (t *T) Now() int64 { return t.rt.now }

// Go spawns an anonymous simulated goroutine, mirroring `go func() {...}()`.
func (t *T) Go(fn Program) {
	// The generated name is a pure function of (parent name, child slot);
	// cache it on the parent so pooled re-runs of the same program skip the
	// Sprintf.
	idx := len(t.rt.gs)
	g := t.g
	for idx >= len(g.childNames) {
		g.childNames = append(g.childNames, childName{})
	}
	cn := &g.childNames[idx]
	if cn.parent != g.name || cn.name == "" {
		cn.parent = g.name
		cn.name = fmt.Sprintf("%s.child%d", g.name, idx)
	}
	t.GoNamed(cn.name, fn)
}

// GoNamed spawns a named simulated goroutine. The child inherits the
// parent's vector clock (the fork edge), so anything the parent did before
// the spawn happens-before everything the child does.
func (t *T) GoNamed(name string, fn Program) {
	child := t.rt.spawn(name, fn)
	// The spawn belongs to the transition in flight (the yield below opens
	// the next one); the footprint entry roots the child's causal clock.
	t.touch(ObjSpawn, child.id, true)
	child.vc.Join(t.g.vc)
	child.vc.Tick(child.id)
	t.g.vc.Tick(t.g.id)
	if t.rt.wants(event.GoSpawn) {
		t.rt.emit(t.g, event.Event{Kind: event.GoSpawn, Obj: name, Aux: child.id})
	}
	t.yield()
}

// park waits for the CPU token to come back. Every suspension funnels
// through here so teardown can unwind cleanly.
func (t *T) park() {
	<-t.g.resume
	if t.rt.killing {
		panic(killSentinel)
	}
}

// reschedule runs one scheduler step on this goroutine's host thread and
// transfers the CPU token to whoever was picked. It returns when this
// goroutine is picked (immediately, without any host-level handoff, when the
// pick continues the current goroutine).
func (t *T) reschedule() {
	next := t.rt.dispatch()
	if next == t.g {
		return // continue running; zero host context switches
	}
	if next != nil {
		t.rt.wake(next)
	} else {
		t.rt.endRun()
	}
	t.park()
}

// yield is a preemption point: the goroutine stays runnable but lets the
// scheduler (re)choose. Every primitive operation starts with a yield, which
// is what exposes buggy interleavings deterministically.
func (t *T) yield() {
	t.g.state = GRunnable
	t.reschedule()
	t.g.state = GRunning
}

// Yield voluntarily reschedules, like runtime.Gosched.
func (t *T) Yield() { t.yield() }

// block parks the goroutine in a blocked state; it returns once some other
// party has called unblock and a dispatch has picked it again.
func (t *T) block(kind BlockKind, obj string) {
	if t.g.blockKindOverride != BlockNone {
		kind = t.g.blockKindOverride
	}
	t.g.state = GBlocked
	t.g.block = blockInfo{kind: kind, obj: obj}
	t.g.blockedSince = t.rt.step
	t.emitObjDetail(event.GoBlock, obj, kind.String())
	t.reschedule()
	t.g.state = GRunning
	t.g.block = blockInfo{}
}

// blockForever parks the goroutine with no waker (nil-channel operations,
// BlockExternal). It never returns except during teardown.
func (t *T) blockForever(kind BlockKind, obj string) {
	t.g.state = GBlocked
	t.g.block = blockInfo{kind: kind, obj: obj}
	t.g.blockedSince = t.rt.step
	t.emitObjDetail(event.GoBlockForever, obj, kind.String())
	t.reschedule()
	// Only teardown resumes us, and park panics with killSentinel then.
	panic(&simPanic{msg: "resumed a goroutine blocked forever on " + obj})
}

// unblock makes g runnable again; the caller has already transferred
// whatever state the wake carries.
func (rt *runtime) unblock(g *G) {
	g.state = GRunnable
}

// BlockExternal blocks forever on a resource outside the runtime's view,
// e.g. a network peer that never answers. The built-in deadlock detector
// cannot see such waits.
func (t *T) BlockExternal(what string) {
	t.yield()
	t.blockForever(BlockExternal, what)
}

// Check records an invariant violation when cond is false. It is the oracle
// kernels use to make non-blocking misbehavior (wrong values, skipped work)
// observable in the Result.
func (t *T) Check(cond bool, msg string) {
	if !cond {
		t.rt.checkFail(t.g, msg)
	}
}

// Checkf is Check with formatting.
func (t *T) Checkf(cond bool, format string, args ...any) {
	if !cond {
		t.rt.checkFail(t.g, fmt.Sprintf(format, args...))
	}
}

// Fail unconditionally records an invariant violation.
func (t *T) Fail(msg string) { t.rt.checkFail(t.g, msg) }

// Panicf raises a simulated panic, crashing the simulated program.
func (t *T) Panicf(format string, args ...any) {
	panic(&simPanic{msg: fmt.Sprintf(format, args...)})
}

// Rand returns a deterministic pseudo-random int in [0, n), drawn from the
// run's seeded source, for workload generation inside programs.
func (t *T) Rand(n int) int {
	t.rt.randDraws++
	return t.rt.random().IntN(n)
}

// tick bumps the goroutine's own clock component; called after every
// release-type synchronization operation per the FastTrack discipline.
func (g *G) tick() { g.vc.Tick(g.id) }

// VCSnapshot returns a copy of the goroutine's current vector clock (for
// tests and detectors).
func (t *T) VCSnapshot() hb.VC { return t.g.vc.Clone() }
