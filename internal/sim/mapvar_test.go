package sim

import (
	"strings"
	"testing"

	"goconcbugs/internal/event"
)

func TestMapVarBasicOps(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		m := NewMapVar[string, int](tt, "m")
		m.Store(tt, "a", 1)
		m.Store(tt, "b", 2)
		v, ok := m.Load(tt, "a")
		tt.Check(ok && v == 1, "load a")
		m.Delete(tt, "a")
		_, ok = m.Load(tt, "a")
		tt.Check(!ok, "a deleted")
		tt.Checkf(m.Len(tt) == 1, "len=%d", m.Len(tt))
	})
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

func TestMapVarConcurrentWritesCrashSometimes(t *testing.T) {
	crashes := 0
	for seed := int64(0); seed < 50; seed++ {
		res := Run(Config{Seed: seed}, func(tt *T) {
			m := NewMapVar[int, int](tt, "m")
			for g := 0; g < 2; g++ {
				g := g
				tt.Go(func(ct *T) {
					for i := 0; i < 3; i++ {
						m.Store(ct, g*10+i, i)
					}
				})
			}
			tt.Sleep(50)
		})
		if res.Outcome == OutcomePanic {
			crashes++
			if !strings.Contains(res.Panics[0].Msg, "concurrent map") {
				t.Fatalf("unexpected panic: %v", res.Panics[0])
			}
		}
	}
	if crashes == 0 {
		t.Fatal("unsynchronized concurrent writes never crashed in 50 seeds")
	}
	if crashes == 50 {
		t.Fatal("the check should be best-effort (schedule-dependent), not universal")
	}
}

func TestMapVarGuardedIsSafe(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := Run(Config{Seed: seed}, func(tt *T) {
			m := NewMapVar[int, int](tt, "m")
			mu := NewMutex(tt, "mu")
			wg := NewWaitGroup(tt, "wg")
			wg.Add(tt, 3)
			for g := 0; g < 3; g++ {
				g := g
				tt.Go(func(ct *T) {
					mu.Lock(ct)
					m.Store(ct, g, g)
					_, _ = m.Load(ct, g)
					mu.Unlock(ct)
					wg.Done(ct)
				})
			}
			wg.Wait(tt)
			tt.Checkf(m.Len(tt) == 3, "len=%d", m.Len(tt))
		})
		if res.Failed() {
			t.Fatalf("seed %d: guarded map failed: outcome=%v %v", seed, res.Outcome, res.CheckFailures)
		}
	}
}

func TestMapVarConcurrentReadsAreFine(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(Config{Seed: seed}, func(tt *T) {
			m := NewMapVar[int, int](tt, "m")
			m.Store(tt, 1, 1)
			wg := NewWaitGroup(tt, "wg")
			wg.Add(tt, 4)
			for g := 0; g < 4; g++ {
				tt.Go(func(ct *T) {
					for i := 0; i < 4; i++ {
						m.Load(ct, 1)
					}
					wg.Done(ct)
				})
			}
			wg.Wait(tt)
		})
		if res.Outcome == OutcomePanic {
			t.Fatalf("seed %d: read-only sharing crashed: %v", seed, res.Panics)
		}
	}
}

func TestMapVarRaceDetectorSeesIt(t *testing.T) {
	// Even when the crash window is missed, the HB detector reports the
	// race (the paper's traditional map races were found both ways).
	detected := false
	for seed := int64(0); seed < 20 && !detected; seed++ {
		obs := &countingObserver{}
		_ = obs
		d := newTestDetector()
		res := Run(Config{Seed: seed, Sinks: []event.Sink{ObserverSink{Obs: d}}}, func(tt *T) {
			m := NewMapVar[int, int](tt, "m")
			tt.Go(func(ct *T) { m.Store(ct, 1, 1) })
			m.Store(tt, 2, 2)
			tt.Sleep(10)
		})
		if res.Outcome == OutcomePanic || d.races > 0 {
			detected = true
		}
	}
	if !detected {
		t.Fatal("map race invisible to both the crash check and the detector")
	}
}

// countingObserver and newTestDetector provide a minimal in-package HB
// check (the real detector lives in package race, which cannot be imported
// here without a cycle through tests).
type countingObserver struct{ accesses int }

func (c *countingObserver) Access(MemAccess) { c.accesses++ }

type testDetector struct {
	last  map[int]struct{ g int }
	races int
}

func newTestDetector() *testDetector {
	return &testDetector{last: map[int]struct{ g int }{}}
}

func (d *testDetector) Access(ac MemAccess) {
	if prev, ok := d.last[ac.Var.ID]; ok && prev.g != ac.G {
		d.races++ // crude: any cross-goroutine touch counts for this test
	}
	d.last[ac.Var.ID] = struct{ g int }{g: ac.G}
}
