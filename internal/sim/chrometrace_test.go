package sim

import (
	"bytes"
	"encoding/json"
	"io"
	gort "runtime"
	"testing"

	"goconcbugs/internal/event"
)

func TestChromeTraceSink(t *testing.T) {
	var buf bytes.Buffer
	cts := NewChromeTraceSink(&buf)
	Run(Config{Seed: 1, Sinks: []event.Sink{cts}}, func(tt *T) {
		ch := NewChanNamed[int](tt, "ch", 0)
		tt.GoNamed("sender", func(ct *T) { ch.Send(ct, 1) })
		ch.Recv(tt)
	})
	if err := cts.Err(); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	var sawThreadName, sawChanOp bool
	for _, e := range decoded.TraceEvents {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			sawThreadName = true
		}
		if name, _ := e["name"].(string); name == "send ch" || name == "recv ch" {
			sawChanOp = true
		}
	}
	if !sawThreadName || !sawChanOp {
		t.Fatalf("trace missing expected records (thread_name=%v chanOp=%v)", sawThreadName, sawChanOp)
	}
}

func TestChromeTraceSinkEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	cts := NewChromeTraceSink(&buf)
	Run(Config{Seed: 1, Sinks: []event.Sink{cts}}, func(tt *T) {})
	if err := cts.Err(); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
}

// longTraceProgram produces tens of thousands of trace events.
func longTraceProgram(tt *T) {
	mu := NewMutex(tt, "mu")
	v := NewIntVar(tt, "v")
	for i := 0; i < 10_000; i++ {
		mu.Lock(tt)
		v.Incr(tt, 1)
		mu.Unlock(tt)
	}
}

// allocDuring returns the bytes allocated while fn runs (TotalAlloc is
// monotonic, so the delta is GC-independent).
func allocDuring(fn func()) uint64 {
	var before, after gort.MemStats
	gort.ReadMemStats(&before)
	fn()
	gort.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestChromeTraceStreamingAllocation is the regression test for the
// streaming export: the sink must not materialize the run, so its
// allocations on a long trace stay bounded (and far below what buffering
// the same trace as []Event costs).
func TestChromeTraceStreamingAllocation(t *testing.T) {
	cfg := Config{Seed: 1, MaxSteps: 1 << 22}

	streaming := allocDuring(func() {
		cts := NewChromeTraceSink(io.Discard)
		c := cfg
		c.Sinks = []event.Sink{cts}
		Run(c, longTraceProgram)
		if err := cts.Err(); err != nil {
			t.Fatal(err)
		}
	})
	buffering := allocDuring(func() {
		tc := &TraceCollector{}
		c := cfg
		c.Sinks = []event.Sink{tc}
		res := Run(c, longTraceProgram)
		if len(tc.Events()) < 40_000 {
			t.Fatalf("expected a long trace, got %d events (outcome %v)", len(tc.Events()), res.Outcome)
		}
	})

	// Both runs pay the same simulation cost; the difference is the trace
	// representation. The buffered []Event for 40k+ events is several MB, so
	// the streaming run staying within 2MB of extra allocation proves it
	// never holds the trace.
	if streaming > buffering {
		t.Fatalf("streaming sink allocated more than buffering collector: %d > %d", streaming, buffering)
	}
	if delta := buffering - streaming; delta < 2<<20 {
		t.Fatalf("streaming saved only %d bytes vs buffering; expected multi-MB savings", delta)
	}
}
