package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	res := Run(Config{Seed: 1, Trace: true}, func(tt *T) {
		ch := NewChanNamed[int](tt, "ch", 0)
		tt.GoNamed("sender", func(ct *T) { ch.Send(ct, 1) })
		ch.Recv(tt)
	})
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var sawThreadName, sawChanOp bool
	for _, e := range decoded.TraceEvents {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			sawThreadName = true
		}
		if name, _ := e["name"].(string); name == "send ch" || name == "recv ch" {
			sawChanOp = true
		}
	}
	if !sawThreadName || !sawChanOp {
		t.Fatalf("trace missing expected records (thread_name=%v chanOp=%v)", sawThreadName, sawChanOp)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {}) // no Trace flag
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
