package rpc

import (
	"sync"
	"testing"
)

// TestZeroWorkerPoolDefaults: a worker-pool server constructed with a
// zero (or negative) pool size must fall back to gRPC-C's five
// thread-creation sites rather than deadlock with no workers at all.
func TestZeroWorkerPoolDefaults(t *testing.T) {
	for _, size := range []int{0, -3} {
		tr := NewTracker()
		srv := NewServer(ModelWorkerPool, size, EchoHandler(0), tr)
		if srv.pool != 5 {
			t.Fatalf("pool size %d: effective pool %d, want default 5", size, srv.pool)
		}
		cl := Dial(srv, ModelWorkerPool, tr, 4)
		for i := 0; i < 10; i++ {
			resp := cl.Call("echo", []byte{byte(i)})
			if err := Validate([]byte{byte(i)}, resp); err != nil {
				t.Fatalf("pool size %d, request %d: %v", size, i, err)
			}
		}
		cl.Hangup()
		srv.Close()
		// Five workers plus the one connection's receive loop.
		if got := tr.Created(); got != 6 {
			t.Errorf("pool size %d: %d tracked goroutines, want 6 (5 workers + 1 receive loop)", size, got)
		}
	}
}

// TestBurstExceedsPool: when far more requests are in flight than the pool
// has workers, every request must still complete — the dispatch queue
// absorbs the burst — and the server must NOT grow beyond its fixed pool,
// which is the defining difference from the goroutine-per-request model.
func TestBurstExceedsPool(t *testing.T) {
	const pool, burst = 2, 64
	tr := NewTracker()
	srv := NewServer(ModelWorkerPool, pool, EchoHandler(0), tr)
	cl := Dial(srv, ModelWorkerPool, tr, burst)

	// Responses on a shared connection are not matched to callers by ID, so
	// every concurrent request carries the same payload.
	payload := []byte("burst")
	before := tr.Created()
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := cl.Call("echo", payload)
			errs <- Validate(payload, resp)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Created(); got != before {
		t.Errorf("burst of %d requests grew the server by %d goroutines; the pool must stay fixed at %d",
			burst, got-before, pool)
	}
	cl.Hangup()
	srv.Close()
}

// TestBurstPerRequestModel is the contrast case: the same burst under
// goroutine-per-request spawns one handler per request on top of the
// receive loop.
func TestBurstPerRequestModel(t *testing.T) {
	const burst = 32
	tr := NewTracker()
	srv := NewServer(ModelGoroutinePerRequest, 0, EchoHandler(0), tr)
	cl := Dial(srv, ModelGoroutinePerRequest, tr, burst)
	for i := 0; i < burst; i++ {
		if err := Validate([]byte{1}, cl.Call("echo", []byte{1})); err != nil {
			t.Fatal(err)
		}
	}
	cl.Hangup()
	srv.Close()
	// One receive loop + one handler per request.
	if got := tr.Created(); got != burst+1 {
		t.Errorf("%d tracked goroutines, want %d (1 receive loop + %d handlers)", got, burst+1, burst)
	}
}

// TestServerCloseIdempotent: a second Close must return immediately rather
// than re-close the work channel (which would panic) or hang on the pool.
func TestServerCloseIdempotent(t *testing.T) {
	tr := NewTracker()
	srv := NewServer(ModelWorkerPool, 2, EchoHandler(0), tr)
	cl := Dial(srv, ModelWorkerPool, tr, 1)
	cl.Call("echo", []byte("x"))
	cl.Hangup()
	srv.Close()
	srv.Close()
}

// TestTrackerEmptyWindow: a tracker that never spawned anything reports a
// zero normalized lifetime instead of dividing by zero.
func TestTrackerEmptyWindow(t *testing.T) {
	tr := NewTracker()
	tr.Finish()
	if got := tr.AvgLifetimeNormalized(); got != 0 {
		t.Errorf("empty tracker lifetime = %v, want 0", got)
	}
	if tr.Created() != 0 {
		t.Errorf("empty tracker created = %d", tr.Created())
	}
}
