package rpc

import (
	"testing"
	"time"
)

func TestEchoRoundTrip(t *testing.T) {
	tr := NewTracker()
	srv := NewServer(ModelGoroutinePerRequest, 0, EchoHandler(0), tr)
	cl := Dial(srv, ModelGoroutinePerRequest, tr, 4)
	resp := cl.Call("echo", []byte("hello"))
	if err := Validate([]byte("hello"), resp); err != nil {
		t.Fatal(err)
	}
	cl.Hangup()
	srv.Close()
}

func TestWorkerPoolServesAllRequests(t *testing.T) {
	tr := NewTracker()
	srv := NewServer(ModelWorkerPool, 3, EchoHandler(0), tr)
	cl := Dial(srv, ModelWorkerPool, tr, 4)
	for i := 0; i < 20; i++ {
		resp := cl.Call("echo", []byte{byte(i)})
		if len(resp.Payload) != 1 || resp.Payload[0] != byte(i) {
			t.Fatalf("bad echo at %d: %v", i, resp.Payload)
		}
	}
	cl.Hangup()
	srv.Close()
}

func TestAsyncCallsComplete(t *testing.T) {
	tr := NewTracker()
	srv := NewServer(ModelGoroutinePerRequest, 0, EchoHandler(0), tr)
	cl := Dial(srv, ModelGoroutinePerRequest, tr, 16)
	var chans []<-chan Response
	for i := 0; i < 16; i++ {
		chans = append(chans, cl.CallAsync("echo", []byte("x")))
	}
	for _, ch := range chans {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("async call never completed")
		}
	}
	cl.Hangup()
	srv.Close()
}

func TestAllWorkloadsComplete(t *testing.T) {
	for _, w := range Workloads() {
		for _, model := range []Model{ModelGoroutinePerRequest, ModelWorkerPool} {
			res := Run(w, model)
			want := w.Connections * w.Requests
			if res.RequestsCompleted != want {
				t.Errorf("%s/%v: completed %d, want %d", w.Name, model, res.RequestsCompleted, want)
			}
			if res.ValidationsFailures != 0 {
				t.Errorf("%s/%v: %d validation failures", w.Name, model, res.ValidationsFailures)
			}
		}
	}
}

// TestTable3Shape asserts Observation 1's shape: the Go model creates more,
// shorter-lived goroutines than the C model.
func TestTable3Shape(t *testing.T) {
	for _, w := range Workloads() {
		cmp := Compare(w)
		if cmp.ServerCreateRatio <= 1 {
			t.Errorf("%s: server create ratio %.2f, want > 1", w.Name, cmp.ServerCreateRatio)
		}
		if cmp.Go.ServerNormLifetime >= 0.9 {
			t.Errorf("%s: Go server goroutines live %.0f%% of the run; should be short-lived",
				w.Name, cmp.Go.ServerNormLifetime*100)
		}
		if cmp.C.ServerNormLifetime < cmp.Go.ServerNormLifetime {
			t.Errorf("%s: C worker threads (%.2f) should out-live Go goroutines (%.2f)",
				w.Name, cmp.C.ServerNormLifetime, cmp.Go.ServerNormLifetime)
		}
	}
}

func TestLatencyPercentilesRecorded(t *testing.T) {
	for _, model := range []Model{ModelGoroutinePerRequest, ModelWorkerPool} {
		res := Run(Workloads()[0], model)
		if res.LatencyP50 <= 0 || res.LatencyP99 <= 0 {
			t.Errorf("%v: zero latency percentiles: p50=%v p99=%v", model, res.LatencyP50, res.LatencyP99)
		}
		if res.LatencyP99 < res.LatencyP50 {
			t.Errorf("%v: p99 (%v) below p50 (%v)", model, res.LatencyP99, res.LatencyP50)
		}
	}
}
