package rpc

import (
	"bytes"
	"sort"
	"sync"
	"time"
)

// The three benchmark workloads of Table 3. Each runs the same request
// stream against a server under either threading model and returns the
// tracked metrics for both the client and the server side (the paper
// reports the two sides separately).

// Workload describes one Table 3 benchmark.
type Workload struct {
	Name        string
	Connections int
	Requests    int // per connection
	PayloadSize int
	Async       bool          // pipelined (asynchronous) calls
	HandlerCost time.Duration // simulated marshal/compute cost
}

// Workloads returns the three benchmark configurations: a synchronous
// small-message workload, an asynchronous streaming workload, and a
// many-connection workload — mirroring the benchmark suite's axes
// (message format, connection count, sync vs async).
func Workloads() []Workload {
	return []Workload{
		{Name: "sync-small", Connections: 2, Requests: 40, PayloadSize: 16, Async: false, HandlerCost: 50 * time.Microsecond},
		{Name: "async-stream", Connections: 2, Requests: 40, PayloadSize: 256, Async: true, HandlerCost: 50 * time.Microsecond},
		{Name: "multi-conn", Connections: 8, Requests: 10, PayloadSize: 64, Async: false, HandlerCost: 50 * time.Microsecond},
	}
}

// RunResult carries the per-side measurements of one workload execution.
type RunResult struct {
	Workload string
	Model    Model
	// Server- and client-side goroutine counts and normalized average
	// lifetimes (Table 3's two metrics).
	ServerGoroutines    int
	ClientGoroutines    int
	ServerNormLifetime  float64
	ClientNormLifetime  float64
	RequestsCompleted   int
	ValidationsFailures int
	// Latency percentiles over the completed requests.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Run executes the workload under the given model.
func Run(w Workload, model Model) RunResult {
	serverTr := NewTracker()
	clientTr := NewTracker()
	srv := NewServer(model, 5, EchoHandler(w.HandlerCost), serverTr)

	var wg sync.WaitGroup
	var mu sync.Mutex
	completed, failures := 0, 0
	var latencies []time.Duration
	payload := bytes.Repeat([]byte{0xab}, w.PayloadSize)
	record := func(start time.Time, resp Response) {
		d := time.Since(start)
		mu.Lock()
		completed++
		latencies = append(latencies, d)
		if Validate(payload, resp) != nil {
			failures++
		}
		mu.Unlock()
	}

	for i := 0; i < w.Connections; i++ {
		cl := Dial(srv, model, clientTr, w.Requests)
		wg.Add(1)
		clientRun := func() {
			defer wg.Done()
			defer cl.Hangup()
			if w.Async && model == ModelGoroutinePerRequest {
				// Pipelined: every call on its own goroutine.
				start := time.Now()
				chans := make([]<-chan Response, 0, w.Requests)
				for r := 0; r < w.Requests; r++ {
					chans = append(chans, cl.CallAsync("echo", payload))
				}
				for _, ch := range chans {
					record(start, <-ch)
				}
				return
			}
			for r := 0; r < w.Requests; r++ {
				start := time.Now()
				record(start, cl.Call("echo", payload))
			}
		}
		if model == ModelGoroutinePerRequest {
			// Go style: a goroutine per connection on the client too.
			clientTr.Spawn(clientRun)
		} else {
			// C style: a small fixed set of client threads; model it
			// as plain goroutines outside the tracked set, counted
			// once below.
			go clientRun()
		}
	}
	wg.Wait()
	srv.Close()
	serverTr.Finish()
	clientTr.Finish()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := RunResult{
		Workload:            w.Name,
		Model:               model,
		ServerGoroutines:    serverTr.Created(),
		ClientGoroutines:    clientTr.Created(),
		ServerNormLifetime:  serverTr.AvgLifetimeNormalized(),
		ClientNormLifetime:  clientTr.AvgLifetimeNormalized(),
		RequestsCompleted:   completed,
		ValidationsFailures: failures,
		LatencyP50:          percentile(latencies, 0.50),
		LatencyP99:          percentile(latencies, 0.99),
	}
	if model == ModelWorkerPool {
		// The C client's fixed threads: one per connection, alive for
		// the whole run (normalized lifetime ~100%).
		res.ClientGoroutines = w.Connections
		res.ClientNormLifetime = 1.0
	}
	return res
}

// Comparison pairs the two models on one workload, the shape of a Table 3
// row.
type Comparison struct {
	Workload          Workload
	Go, C             RunResult
	ServerCreateRatio float64 // goroutines created / threads created
	ClientCreateRatio float64
}

// Compare runs both models on w.
func Compare(w Workload) Comparison {
	goRes := Run(w, ModelGoroutinePerRequest)
	cRes := Run(w, ModelWorkerPool)
	cmp := Comparison{Workload: w, Go: goRes, C: cRes}
	if cRes.ServerGoroutines > 0 {
		cmp.ServerCreateRatio = float64(goRes.ServerGoroutines) / float64(cRes.ServerGoroutines)
	}
	if cRes.ClientGoroutines > 0 {
		cmp.ClientCreateRatio = float64(goRes.ClientGoroutines) / float64(cRes.ClientGoroutines)
	}
	return cmp
}
