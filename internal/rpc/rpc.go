// Package rpc is the substrate for Table 3's dynamic comparison.
//
// The paper ran gRPC-Go and gRPC-C against three RPC benchmarks and
// measured (a) how many goroutines the Go version creates relative to the
// threads the C version creates and (b) the average goroutine lifetime
// normalized by total run time (threads in gRPC-C live for the whole run;
// goroutines are short-lived).
//
// We cannot ship the authors' testbed, so we isolate the property Table 3
// actually measures: the *server threading model*. This package implements
// one small RPC framework over an in-memory transport with two
// interchangeable models —
//
//   - ModelGoroutinePerRequest: the gRPC-Go style; every accepted
//     connection gets a receiver goroutine and every request gets a fresh
//     handler goroutine (plus per-call sender goroutines on the client),
//   - ModelWorkerPool: the gRPC-C style; a fixed pool of long-lived workers
//     (gRPC-C has five thread-creation sites) serves every request, and the
//     client runs synchronous calls on its fixed threads.
//
// Both models execute the same three workloads the benchmarks configure
// ("different message formats, different numbers of connections, and
// synchronous vs. asynchronous RPC requests"), and instrumented spawn
// points record every goroutine's lifetime, which is what the Table 3 bench
// reports.
package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model selects the server (and client) threading model.
type Model int

// The two threading models.
const (
	ModelGoroutinePerRequest Model = iota // gRPC-Go style
	ModelWorkerPool                       // gRPC-C style
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == ModelWorkerPool {
		return "worker-pool (gRPC-C model)"
	}
	return "goroutine-per-request (gRPC-Go model)"
}

// Request is one RPC request.
type Request struct {
	ID      int
	Method  string
	Payload []byte
}

// Response is one RPC response.
type Response struct {
	ID      int
	Payload []byte
}

// Handler computes a response; WorkCost simulates marshaling/compute cost.
type Handler func(Request) Response

// Tracker records goroutine (or worker-thread) creations and lifetimes.
type Tracker struct {
	mu        sync.Mutex
	created   int64
	lifetimes []time.Duration
	runStart  time.Time
	runEnd    time.Time
}

// NewTracker starts a tracking window.
func NewTracker() *Tracker {
	return &Tracker{runStart: time.Now()}
}

// Spawn runs fn on a new tracked goroutine.
func (tr *Tracker) Spawn(fn func()) {
	atomic.AddInt64(&tr.created, 1)
	start := time.Now()
	go func() {
		defer func() {
			d := time.Since(start)
			tr.mu.Lock()
			tr.lifetimes = append(tr.lifetimes, d)
			tr.mu.Unlock()
		}()
		fn()
	}()
}

// Finish closes the tracking window.
func (tr *Tracker) Finish() { tr.runEnd = time.Now() }

// Created returns the number of tracked goroutines.
func (tr *Tracker) Created() int { return int(atomic.LoadInt64(&tr.created)) }

// AvgLifetimeNormalized returns mean(goroutine lifetime) / total run time —
// Table 3's second metric.
func (tr *Tracker) AvgLifetimeNormalized() float64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.lifetimes) == 0 {
		return 0
	}
	total := tr.runEnd.Sub(tr.runStart)
	if total <= 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range tr.lifetimes {
		sum += d
	}
	avg := sum / time.Duration(len(tr.lifetimes))
	return float64(avg) / float64(total)
}

// conn is one in-memory connection: a request stream and a response stream.
type conn struct {
	reqs  chan Request
	resps chan Response
}

func newConn(depth int) *conn {
	return &conn{
		reqs:  make(chan Request, depth),
		resps: make(chan Response, depth),
	}
}

// Server serves RPCs over accepted connections under a threading model.
type Server struct {
	model   Model
	pool    int
	handler Handler
	tracker *Tracker

	mu     sync.Mutex
	conns  []*conn
	workCh chan work      // worker-pool dispatch queue
	connWG sync.WaitGroup // receive loops and per-request handlers
	poolWG sync.WaitGroup // fixed worker threads
	closed bool
}

type work struct {
	req Request
	out chan<- Response
}

// NewServer creates a server; poolSize only applies to ModelWorkerPool
// (gRPC-C's five threads by default when 0).
func NewServer(model Model, poolSize int, handler Handler, tracker *Tracker) *Server {
	if poolSize <= 0 {
		poolSize = 5
	}
	s := &Server{model: model, pool: poolSize, handler: handler, tracker: tracker}
	if model == ModelWorkerPool {
		s.workCh = make(chan work, 128)
		for i := 0; i < poolSize; i++ {
			s.poolWG.Add(1)
			tracker.Spawn(func() {
				defer s.poolWG.Done()
				for w := range s.workCh {
					w.out <- s.handler(w.req)
				}
			})
		}
	}
	return s
}

// accept registers a connection and starts its receive loop.
func (s *Server) accept(c *conn) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
	s.connWG.Add(1)
	s.tracker.Spawn(func() {
		defer s.connWG.Done()
		for req := range c.reqs {
			switch s.model {
			case ModelGoroutinePerRequest:
				req := req
				s.connWG.Add(1)
				s.tracker.Spawn(func() {
					defer s.connWG.Done()
					c.resps <- s.handler(req)
				})
			case ModelWorkerPool:
				s.workCh <- work{req: req, out: c.resps}
			}
		}
	})
}

// Close shuts the server down after all connections have been closed by
// their clients.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	// Receive loops drain first (clients have hung up), then the pool,
	// if any, is told to stop and waited for.
	s.connWG.Wait()
	if s.workCh != nil {
		close(s.workCh)
		s.poolWG.Wait()
	}
}

// Client issues RPCs over one connection.
type Client struct {
	model   Model
	conn    *conn
	tracker *Tracker
	nextID  int64
}

// Dial connects a new client to the server.
func Dial(s *Server, model Model, tracker *Tracker, depth int) *Client {
	c := newConn(depth)
	s.accept(c)
	return &Client{model: model, conn: c, tracker: tracker}
}

// Call performs one synchronous RPC.
func (c *Client) Call(method string, payload []byte) Response {
	id := int(atomic.AddInt64(&c.nextID, 1))
	c.conn.reqs <- Request{ID: id, Method: method, Payload: payload}
	return <-c.conn.resps
}

// CallAsync issues the request on a fresh goroutine (the Go style of
// wrapping a blocking call) and delivers the response on the returned
// channel. Under the worker-pool model the caller is expected to use Call
// from its fixed threads instead.
func (c *Client) CallAsync(method string, payload []byte) <-chan Response {
	out := make(chan Response, 1)
	id := int(atomic.AddInt64(&c.nextID, 1))
	c.tracker.Spawn(func() {
		c.conn.reqs <- Request{ID: id, Method: method, Payload: payload}
		out <- <-c.conn.resps
	})
	return out
}

// Hangup closes the client's request stream.
func (c *Client) Hangup() { close(c.conn.reqs) }

// EchoHandler returns a handler that spins for cost and echoes the payload.
func EchoHandler(cost time.Duration) Handler {
	return func(r Request) Response {
		if cost > 0 {
			busyWait(cost)
		}
		return Response{ID: r.ID, Payload: r.Payload}
	}
}

// busyWait burns CPU for roughly d (sleeping would park the goroutine and
// make worker threads look idle rather than busy).
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Validate checks a response echoes its request (used by workloads).
func Validate(req []byte, resp Response) error {
	if string(resp.Payload) != string(req) {
		return fmt.Errorf("rpc: payload mismatch")
	}
	return nil
}
