package vet_test

import (
	"fmt"

	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// Example checks the Figure 10 bug — a channel closed from two goroutines —
// with the usage-rule monitor, which flags the violation at the second
// close (the race detector cannot: no data race is involved).
func Example() {
	m, res := vet.Check(sim.Config{Seed: 1}, func(t *sim.T) {
		closed := sim.NewChanNamed[struct{}](t, "c.closed", 0)
		closed.Close(t)
		closed.Close(t)
	})
	for _, v := range m.Violations() {
		fmt.Println("rule:", v.Rule)
	}
	fmt.Println("outcome:", res.Outcome)
	// Output:
	// rule: double-close
	// outcome: panic
}

// Example_figure7 shows the heuristic warning for a potentially blocking
// channel operation under a held lock — Figure 7's shape.
func Example_figure7() {
	m, _ := vet.Check(sim.Config{Seed: 1}, func(t *sim.T) {
		mu := sim.NewMutex(t, "m")
		ch := sim.NewChanNamed[int](t, "ch", 0)
		t.Go(func(ct *sim.T) {
			mu.Lock(ct)
			ch.Send(ct, 1)
			mu.Unlock(ct)
		})
		t.Sleep(5)
		ch.Recv(t)
	})
	for _, v := range m.Warnings() {
		fmt.Println("warning:", v.Rule)
	}
	// Output:
	// warning: chan-in-critical-section
}
