package vet

import (
	"strings"
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

func TestDoubleCloseFlagged(t *testing.T) {
	m, res := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChanNamed[int](tt, "ch", 0)
		ch.Close(tt)
		ch.Close(tt)
	})
	if !m.HasRule(RuleDoubleClose) {
		t.Fatalf("double close not flagged; violations=%v", m.Violations())
	}
	if res.Outcome != sim.OutcomePanic {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestSendOnClosedFlagged(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChanNamed[int](tt, "ch", 1)
		ch.Close(tt)
		ch.Send(tt, 1)
	})
	if !m.HasRule(RuleSendOnClosed) {
		t.Fatalf("send on closed not flagged; violations=%v", m.Violations())
	}
}

func TestNilChannelFlagged(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		var ch sim.Chan[int]
		tt.Go(func(ct *sim.T) { ch.Send(ct, 1) })
		tt.Sleep(10)
	})
	if !m.HasRule(RuleNilChannel) {
		t.Fatalf("nil channel op not flagged; violations=%v", m.Violations())
	}
}

func TestNegativeWaitGroupFlagged(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		wg := sim.NewWaitGroup(tt, "wg")
		wg.Done(tt)
	})
	if !m.HasRule(RuleNegativeWaitGroup) {
		t.Fatalf("negative counter not flagged; violations=%v", m.Violations())
	}
}

func TestAddAfterWaitFlagged(t *testing.T) {
	// The Figure 9 shape: Add races an in-flight (or unordered) Wait.
	flagged := false
	for seed := int64(0); seed < 30; seed++ {
		m, _ := Check(sim.Config{Seed: seed}, func(tt *sim.T) {
			wg := sim.NewWaitGroup(tt, "wg")
			tt.Go(func(ct *sim.T) {
				ct.Work(sim.Duration(ct.Rand(4)))
				wg.Add(ct, 1)
				wg.Done(ct)
			})
			tt.Go(func(ct *sim.T) {
				ct.Work(sim.Duration(ct.Rand(4)))
				wg.Wait(ct)
			})
			tt.Sleep(50)
		})
		if m.HasRule(RuleAddAfterWait) {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("Add racing Wait never flagged across 30 seeds")
	}
}

func TestOrderedAddBeforeWaitClean(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m, _ := Check(sim.Config{Seed: seed}, func(tt *sim.T) {
			wg := sim.NewWaitGroup(tt, "wg")
			wg.Add(tt, 2)
			for i := 0; i < 2; i++ {
				tt.Go(func(ct *sim.T) {
					ct.Work(sim.Duration(ct.Rand(4)))
					wg.Done(ct)
				})
			}
			wg.Wait(tt)
			// Sequential reuse after Wait is legal: completion of
			// Wait happens-before this Add.
			wg.Add(tt, 1)
			wg.Done(tt)
			wg.Wait(tt)
		})
		if m.HasRule(RuleAddAfterWait) {
			t.Fatalf("seed %d: legal Add-before-Wait (and sequential reuse) flagged: %v",
				seed, m.Violations())
		}
	}
}

func TestChanInCriticalSectionWarning(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "m")
		ch := sim.NewChanNamed[int](tt, "ch", 0)
		tt.Go(func(ct *sim.T) {
			mu.Lock(ct)
			ch.Send(ct, 1) // Figure 7
			mu.Unlock(ct)
		})
		tt.Sleep(5)
		ch.Recv(tt)
	})
	if !m.HasRule(RuleChanInCritical) {
		t.Fatalf("channel send under lock not flagged; violations=%v", m.Violations())
	}
	for _, v := range m.Violations() {
		if v.Rule == RuleChanInCritical && !v.Warning {
			t.Fatalf("chan-in-critical must be a warning: %v", v)
		}
	}
}

func TestChanOutsideCriticalSectionClean(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "m")
		ch := sim.NewChanNamed[int](tt, "ch", 1)
		mu.Lock(tt)
		mu.Unlock(tt)
		ch.Send(tt, 1)
		ch.Recv(tt)
	})
	if m.HasRule(RuleChanInCritical) {
		t.Fatalf("lock-free channel op flagged: %v", m.Violations())
	}
}

// TestVetCatchesWhatOtherDetectorsMiss runs the three figure bugs the other
// detectors cannot see and asserts the rule checker reports each.
func TestVetCatchesWhatOtherDetectorsMiss(t *testing.T) {
	cases := []struct {
		kernel string
		rule   Rule
	}{
		{"docker-24007-double-close", RuleDoubleClose}, // not a data race
		{"etcd-waitgroup-order", RuleAddAfterWait},     // not a data race
		{"boltdb-240-chan-mutex", RuleChanInCritical},  // invisible to -race
	}
	for _, c := range cases {
		k, ok := kernels.ByID(c.kernel)
		if !ok {
			t.Fatalf("missing kernel %s", c.kernel)
		}
		found := false
		for seed := int64(0); seed < 50 && !found; seed++ {
			m, _ := Check(k.Config(seed), k.Buggy)
			if m.HasRule(c.rule) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: rule %s never fired across 50 seeds", c.kernel, c.rule)
		}
	}
}

// TestVetQuietOnAllFixedKernels: no patched kernel may trip an error rule
// (heuristic warnings are allowed — a fixed program can still structure
// channel operations near locks).
func TestVetQuietOnAllFixedKernels(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				m, _ := Check(k.Config(seed), k.Fixed)
				if errs := m.Errors(); len(errs) > 0 {
					t.Fatalf("seed %d: %v", seed, errs)
				}
			}
		})
	}
}

func TestViolationStringAndFilters(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "m")
		ch := sim.NewChanNamed[int](tt, "ch", 1)
		mu.Lock(tt)
		ch.Send(tt, 1) // warning: under lock
		mu.Unlock(tt)
		ch.Close(tt)
		ch.Close(tt) // error: double close
	})
	if len(m.Warnings()) == 0 || len(m.Errors()) == 0 {
		t.Fatalf("want both warnings and errors: %v", m.Violations())
	}
	for _, v := range m.Violations() {
		s := v.String()
		if !strings.Contains(s, "vet ") || !strings.Contains(s, string(v.Rule)) {
			t.Fatalf("violation string = %q", s)
		}
		if v.Warning && !strings.Contains(s, "warning") {
			t.Fatalf("warning not labeled: %q", s)
		}
		if !v.Warning && !strings.Contains(s, "violation") {
			t.Fatalf("error not labeled: %q", s)
		}
	}
}

func TestDuplicateViolationsDeduped(t *testing.T) {
	m, _ := Check(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "m")
		ch := sim.NewChanNamed[int](tt, "ch", 4)
		mu.Lock(tt)
		for i := 0; i < 4; i++ {
			ch.Send(tt, i) // same site, same rule, same goroutine
		}
		mu.Unlock(tt)
	})
	n := 0
	for _, v := range m.Violations() {
		if v.Rule == RuleChanInCritical {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("chan-in-critical reported %d times, want deduped to 1", n)
	}
}
