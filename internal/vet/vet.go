// Package vet implements the dynamic rule-enforcement monitor the paper's
// Section 7 proposes: "Our study also found the violation of rules Go
// enforces with its concurrency primitives is one major reason for
// concurrency bugs. A novel dynamic technique can try to enforce such rules
// and detect violation at runtime."
//
// The monitor attaches to a simulated run as an event sink (sim.Config.Sinks)
// subscribed to exactly the rule-relevant kinds, and checks, at every
// synchronization event:
//
//   - RuleDoubleClose — a channel may only be closed once (Figure 10 /
//     Docker#24007). Flagged at the violating close, before the panic.
//   - RuleSendOnClosed — sends to closed channels panic.
//   - RuleNilChannel — operations on nil channels block forever.
//   - RuleNegativeWaitGroup — the counter must never go negative.
//   - RuleAddAfterWait — "Add has to be invoked before Wait"
//     (Section 6.1.1, Figure 9 / the etcd order violation): an Add that is
//     not happens-before-ordered after some Wait's completion, executed
//     once that Wait has begun, is flagged.
//   - RuleChanInCritical — a potentially blocking channel operation (or a
//     default-less select) executed while holding a lock, the Figure 7 /
//     BoltDB#240 "Chan w/" pattern. Reported as a warning: it is a
//     heuristic for bug-prone structure, not a certain bug.
//
// The value of this monitor is exactly the gap the paper documents: the
// race detector cannot see the Figure 9 and Figure 10 bugs (they are not
// data races) and the built-in deadlock detector cannot see Figure 7 when
// the rest of the process stays busy; the rule checker catches all three
// classes at their first occurrence.
package vet

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
	"goconcbugs/internal/sim"
)

// Rule identifies a checked usage rule.
type Rule string

// The checked rules.
const (
	RuleDoubleClose       Rule = "double-close"
	RuleSendOnClosed      Rule = "send-on-closed"
	RuleNilChannel        Rule = "nil-channel"
	RuleNegativeWaitGroup Rule = "negative-waitgroup"
	RuleAddAfterWait      Rule = "add-after-wait"
	RuleChanInCritical    Rule = "chan-in-critical-section"
)

// Violation is one detected rule violation.
type Violation struct {
	Rule    Rule
	G       int
	GName   string
	Obj     string
	Step    int64
	Warning bool // heuristic finding rather than a certain bug
	Msg     string
}

// String renders the violation like a diagnostic line.
func (v Violation) String() string {
	kind := "violation"
	if v.Warning {
		kind = "warning"
	}
	return fmt.Sprintf("vet %s [%s] g%d(%s) on %s at step %d: %s",
		kind, v.Rule, v.G, v.GName, v.Obj, v.Step, v.Msg)
}

// waitRecord tracks one WaitGroup.Wait for the Add-before-Wait rule.
type waitRecord struct {
	ended bool
	endVC hb.VC
}

// Monitor is the rule checker. Create one per run (single-run state, no
// locking needed: the simulated runtime is sequential).
type Monitor struct {
	violations []Violation
	waits      map[string][]*waitRecord // WaitGroup name -> waits seen
	openWait   map[string][]*waitRecord // waits currently blocked
	// adds counts Add events per WaitGroup before any Wait, to suppress
	// the common safe pattern.
	reported map[string]bool
}

// New creates a monitor.
func New() *Monitor {
	return &Monitor{
		waits:    map[string][]*waitRecord{},
		openWait: map[string][]*waitRecord{},
		reported: map[string]bool{},
	}
}

var (
	_ sim.Monitor = (*Monitor)(nil)
	_ event.Sink  = (*Monitor)(nil)
)

// vetKindOps maps the subscribed event kinds onto the SyncOp vocabulary the
// rule logic dispatches on.
var vetKindOps = map[event.Kind]sim.SyncOp{
	event.ChanSend:        sim.OpChanSend,
	event.ChanRecv:        sim.OpChanRecv,
	event.ChanCloseClosed: sim.OpChanCloseClosed,
	event.ChanSendClosed:  sim.OpChanSendClosed,
	event.ChanNil:         sim.OpChanNil,
	event.SelectBlocking:  sim.OpSelectBlocking,
	event.WGAdd:           sim.OpWGAdd,
	event.WGNegative:      sim.OpWGNegative,
	event.WGWaitStart:     sim.OpWGWaitStart,
	event.WGWaitEnd:       sim.OpWGWaitEnd,
}

// Kinds implements event.Sink: only the rule-relevant kinds, so a vetted
// run pays nothing for memory accesses, lock traffic, or scheduling events.
func (m *Monitor) Kinds() []event.Kind {
	out := make([]event.Kind, 0, len(vetKindOps))
	for k := range vetKindOps {
		out = append(out, k)
	}
	return out
}

// Event implements event.Sink by translating the event into the SyncEvent
// vocabulary the rule logic consumes. The live VC and HeldLocks slices are
// only read during the call (SyncEvent clones what it retains).
func (m *Monitor) Event(ev *event.Event) {
	m.SyncEvent(sim.SyncEvent{
		Op: vetKindOps[ev.Kind], G: ev.G, GName: ev.GName, Obj: ev.Obj,
		VC: ev.VC, Counter: ev.Counter, Delta: ev.Delta,
		HeldLocks: ev.HeldLocks, Step: ev.Step,
	})
}

// Violations returns everything found, in detection order.
func (m *Monitor) Violations() []Violation { return m.violations }

// Errors returns only the non-warning violations.
func (m *Monitor) Errors() []Violation {
	var out []Violation
	for _, v := range m.violations {
		if !v.Warning {
			out = append(out, v)
		}
	}
	return out
}

// Warnings returns only the heuristic findings.
func (m *Monitor) Warnings() []Violation {
	var out []Violation
	for _, v := range m.violations {
		if v.Warning {
			out = append(out, v)
		}
	}
	return out
}

// HasRule reports whether any finding matches the rule.
func (m *Monitor) HasRule(r Rule) bool {
	for _, v := range m.violations {
		if v.Rule == r {
			return true
		}
	}
	return false
}

func (m *Monitor) report(ev sim.SyncEvent, rule Rule, warning bool, format string, args ...any) {
	key := string(rule) + "/" + ev.Obj + "/" + fmt.Sprint(ev.G)
	if m.reported[key] {
		return
	}
	m.reported[key] = true
	m.violations = append(m.violations, Violation{
		Rule: rule, G: ev.G, GName: ev.GName, Obj: ev.Obj, Step: ev.Step,
		Warning: warning, Msg: fmt.Sprintf(format, args...),
	})
}

// SyncEvent implements sim.Monitor.
func (m *Monitor) SyncEvent(ev sim.SyncEvent) {
	switch ev.Op {
	case sim.OpChanCloseClosed:
		m.report(ev, RuleDoubleClose, false, "channel closed twice")
	case sim.OpChanSendClosed:
		m.report(ev, RuleSendOnClosed, false, "send on closed channel")
	case sim.OpChanNil:
		m.report(ev, RuleNilChannel, false, "operation on nil channel blocks forever")
	case sim.OpWGNegative:
		m.report(ev, RuleNegativeWaitGroup, false, "counter dropped to %d", ev.Counter)
	case sim.OpWGWaitStart:
		rec := &waitRecord{}
		m.waits[ev.Obj] = append(m.waits[ev.Obj], rec)
		m.openWait[ev.Obj] = append(m.openWait[ev.Obj], rec)
	case sim.OpWGWaitEnd:
		open := m.openWait[ev.Obj]
		if len(open) > 0 {
			rec := open[len(open)-1]
			rec.ended = true
			rec.endVC = ev.VC.Clone()
			m.openWait[ev.Obj] = open[:len(open)-1]
		}
	case sim.OpWGAdd:
		if ev.Delta <= 0 {
			return
		}
		for _, rec := range m.waits[ev.Obj] {
			if !rec.ended {
				// A Wait is in flight and this Add is, by
				// construction, not ordered before it.
				m.report(ev, RuleAddAfterWait, false,
					"Add(%d) raced an in-flight Wait; 'Add has to be invoked before Wait'", ev.Delta)
				return
			}
			if !rec.endVC.Leq(ev.VC) {
				// The Wait completed but nothing orders its
				// completion before this Add: the Add could
				// equally have landed during the Wait.
				m.report(ev, RuleAddAfterWait, false,
					"Add(%d) unordered with an earlier Wait; 'Add has to be invoked before Wait'", ev.Delta)
				return
			}
		}
	case sim.OpChanSend, sim.OpChanRecv, sim.OpSelectBlocking:
		if len(ev.HeldLocks) > 0 {
			m.report(ev, RuleChanInCritical, true,
				"potentially blocking channel operation while holding %v (the Figure 7 pattern)", ev.HeldLocks)
		}
	}
}

// Check runs prog under a fresh monitor and returns it along with the run
// result — the one-call entry point.
func Check(cfg sim.Config, prog sim.Program) (*Monitor, *sim.Result) {
	m := New()
	cfg.Sinks = append(cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)], m)
	res := sim.Run(cfg, prog)
	return m, res
}
