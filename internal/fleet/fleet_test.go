package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goconcbugs/internal/detect"
	"goconcbugs/internal/engine"
	"goconcbugs/internal/harness"
)

// baseJob is the sweep every fleet test fans out: small enough to finish in
// milliseconds per shard, racy enough that a mixed-up fold would change the
// verdict.
func baseJob() engine.Job {
	return engine.Job{Kind: engine.KindSweep, Kernel: "docker-abba-order",
		Runs: 60, Seed: 5, Detectors: []string{"cycle"}}
}

// realDaemon is a fleet "remote" backed by a real in-process engine behind
// the same Client surface a network daemon presents — full-fidelity shard
// bytes without sockets.
func realDaemon(t *testing.T) Client {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2, SweepWorkers: 1})
	t.Cleanup(eng.Close)
	return &localClient{eng: eng, tickets: map[string]*engine.Ticket{}}
}

// serialBaseline runs the job serially with a checkpoint and returns
// (checkpoint bytes, canonical text).
func serialBaseline(t *testing.T, job engine.Job) ([]byte, string) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 1, SweepWorkers: 1})
	defer eng.Close()
	job.Checkpoint = filepath.Join(t.TempDir(), "serial.ck")
	res, err := eng.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(job.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	return data, res.Text
}

// checkFold asserts the fleet's folded checkpoint and text match the serial
// baseline byte for byte (modulo the fold label).
func checkFold(t *testing.T, rep *Report, base string, shards int, wantCk []byte, wantText string) {
	t.Helper()
	got, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("reading folded checkpoint: %v", err)
	}
	if !bytes.Equal(got, wantCk) {
		t.Errorf("folded checkpoint differs from serial (%d vs %d bytes)", len(got), len(wantCk))
	}
	norm := strings.Replace(rep.Result.Text,
		", fold of "+itoa(shards)+" shards", "", 1)
	if norm != wantText {
		t.Errorf("fold text differs from serial:\nfleet:\n%s\nserial:\n%s", rep.Result.Text, wantText)
	}
}

func itoa(n int) string {
	return string(rune('0' + n)) // test shards stay single-digit
}

func dialMap(m map[string]Client) func(string) Client {
	return func(host string) Client { return m[host] }
}

func counters(rep *Report) map[string]DaemonReport {
	out := map[string]DaemonReport{}
	for _, d := range rep.Daemons {
		out[d.Name] = d
	}
	return out
}

// --- fault-injecting client decorators ---------------------------------

// flakyClient fails the first n Enqueues with a transient error.
type flakyClient struct {
	Client
	left atomic.Int32
}

func (f *flakyClient) Enqueue(ctx context.Context, job engine.Job) (string, error) {
	if f.left.Add(-1) >= 0 {
		return "", errors.New("connection reset by peer")
	}
	return f.Client.Enqueue(ctx, job)
}

// busyClient answers every Enqueue with the daemon's backpressure error.
type busyClient struct{ Client }

func (b *busyClient) Enqueue(ctx context.Context, job engine.Job) (string, error) {
	return "", engine.ErrBusy
}

// deadClient models an unreachable daemon: every call errors.
type deadClient struct{}

func (deadClient) Enqueue(ctx context.Context, job engine.Job) (string, error) {
	return "", errors.New("connection refused")
}
func (deadClient) Result(ctx context.Context, id string) (*engine.Result, error) {
	return nil, errors.New("connection refused")
}
func (deadClient) Cancel(ctx context.Context, id string) error { return errors.New("connection refused") }
func (deadClient) Health(ctx context.Context) (engine.Health, error) {
	return engine.Health{}, errors.New("connection refused")
}
func (deadClient) Close() {}

// hangClient accepts jobs but never delivers results — a daemon that
// wedged after dequeue. Result blocks until the caller gives up.
type hangClient struct{ Client }

func (h *hangClient) Result(ctx context.Context, id string) (*engine.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// panicReportClient rewrites each shard result to look like a sweep whose
// first seed panicked on the host: Completed shrinks by one and a
// panic-reason Incomplete entry appears, exactly how detect.Sweep reports a
// kernel that panics on some seeds. The checkpoint bytes are untouched —
// panicked seeds still have deterministic records a serial fold reproduces.
type panicReportClient struct{ Client }

func (p *panicReportClient) Result(ctx context.Context, id string) (*engine.Result, error) {
	res, err := p.Client.Result(ctx, id)
	if err != nil || res == nil || res.Sweep == nil || res.Sweep.Completed == 0 {
		return res, err
	}
	r2 := *res
	sw := *res.Sweep
	sw.Completed--
	sw.Incomplete = append(append([]detect.IncompleteRun{}, sw.Incomplete...),
		detect.IncompleteRun{Run: 0, Seed: 0, Reason: harness.ReasonPanic, Detail: "simulated host panic"})
	r2.Sweep = &sw
	return &r2, nil
}

// slowClient delivers correct results after a fixed straggle.
type slowClient struct {
	Client
	delay time.Duration
}

func (s *slowClient) Result(ctx context.Context, id string) (*engine.Result, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return s.Client.Result(ctx, id)
}

// --- tests --------------------------------------------------------------

// TestFleetFoldsIdenticalToSerial is the tentpole contract on the happy
// path: two daemons, four shards, and the fold is byte-identical to one
// serial sweep.
func TestFleetFoldsIdenticalToSerial(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{"a": realDaemon(t), "b": realDaemon(t)}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"a", "b"}, Shards: 4, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond, Dial: dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 4, wantCk, wantText)
	if rep.Degraded || rep.LocalShards != 0 {
		t.Errorf("healthy fleet reported degraded=%v localShards=%d", rep.Degraded, rep.LocalShards)
	}
	cs := counters(rep)
	if cs["a"].Completed+cs["b"].Completed != 4 {
		t.Errorf("daemon completions %d+%d, want 4", cs["a"].Completed, cs["b"].Completed)
	}
}

// TestFleetRetriesFlakyDaemon: transient enqueue failures are retried with
// backoff and never corrupt the fold.
func TestFleetRetriesFlakyDaemon(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	flaky := &flakyClient{Client: realDaemon(t)}
	flaky.left.Store(2)
	clients := map[string]Client{"flaky": flaky, "solid": realDaemon(t)}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"flaky", "solid"}, Shards: 4, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		Retry:         retryFast(),
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 4, wantCk, wantText)
	if got := counters(rep)["flaky"].Retried; got == 0 {
		t.Error("flaky daemon recorded no retries")
	}
}

// retryFast keeps test backoff in the milliseconds.
func retryFast() harness.RetryOptions {
	return harness.RetryOptions{Attempts: 3, Backoff: 5 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond, Jitter: 0.5, Seed: 1}
}

// TestFleetStealsFromHungDaemon: a daemon that accepts a shard and then
// wedges loses it to a lease steal; the fold is unharmed.
func TestFleetStealsFromHungDaemon(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{
		"hung":  &hangClient{Client: realDaemon(t)},
		"solid": realDaemon(t),
	}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"hung", "solid"}, Shards: 4, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		LeaseTimeout:  50 * time.Millisecond,
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 4, wantCk, wantText)
	cs := counters(rep)
	if cs["solid"].Stolen == 0 {
		t.Error("no steals recorded against the hung daemon")
	}
	if cs["solid"].Completed != 4 {
		t.Errorf("solid daemon completed %d shards, want all 4", cs["solid"].Completed)
	}
}

// TestFleetHedgesStragglers: with hedging on, an idle daemon duplicates a
// straggling shard, the first finisher wins, and the fold stays canonical.
func TestFleetHedgesStragglers(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{
		"slow": &slowClient{Client: realDaemon(t), delay: 2 * time.Second},
		"fast": realDaemon(t),
	}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"slow", "fast"}, Shards: 2, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		LeaseTimeout:  time.Minute, // isolate hedging from stealing
		HedgeAfter:    30 * time.Millisecond,
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 2, wantCk, wantText)
	if got := counters(rep)["fast"].Hedged; got == 0 {
		t.Error("fast daemon recorded no hedges against the straggler")
	}
}

// TestFleetRoutesAroundBusyDaemon: ErrBusy is backpressure, not failure —
// the shard reroutes without charging a retry, and the busy daemon is
// left alone for a backoff window.
func TestFleetRoutesAroundBusyDaemon(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{
		"busy":  &busyClient{Client: realDaemon(t)},
		"solid": realDaemon(t),
	}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"busy", "solid"}, Shards: 4, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 4, wantCk, wantText)
	cs := counters(rep)
	if cs["busy"].Busy == 0 {
		t.Error("busy daemon recorded no ErrBusy rejections")
	}
	if cs["busy"].Retried != 0 {
		t.Errorf("busy rejections were charged as %d retries", cs["busy"].Retried)
	}
	if cs["solid"].Completed != 4 {
		t.Errorf("solid daemon completed %d shards, want all 4", cs["solid"].Completed)
	}
}

// TestFleetDegradesToLocal is the blackout drill: every remote is
// unreachable, the sweep still completes on the local fallback, and the
// report says so in a structured way.
func TestFleetDegradesToLocal(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{"dead1": deadClient{}, "dead2": deadClient{}}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"dead1", "dead2"}, Shards: 3, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		Retry:         retryFast(),
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 3, wantCk, wantText)
	if !rep.Degraded {
		t.Error("all-remotes-down run not marked degraded")
	}
	if rep.LocalShards != 3 {
		t.Errorf("LocalShards = %d, want 3", rep.LocalShards)
	}
	if got := counters(rep)["local"].Completed; got != 3 {
		t.Errorf("local pseudo-daemon completed %d, want 3", got)
	}
}

// TestFleetAllLocalWhenNoHosts: an empty host list is a purely local fleet
// — not degraded, just local.
func TestFleetAllLocalWhenNoHosts(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	rep, err := Run(context.Background(), job, Options{
		Shards: 2, CheckpointBase: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 2, wantCk, wantText)
	if rep.Degraded {
		t.Error("hostless fleet marked degraded")
	}
	if rep.LocalShards != 2 {
		t.Errorf("LocalShards = %d, want 2", rep.LocalShards)
	}
}

// TestFleetAcceptsPanickedSeeds: a shard whose sweep report lists
// host-panicked seeds (excluded from Completed but recorded
// deterministically) is accepted like a serial sweep would fold it — not
// retried until the remote budget burns out and the run degrades.
func TestFleetAcceptsPanickedSeeds(t *testing.T) {
	job := baseJob()
	wantCk, wantText := serialBaseline(t, job)
	base := filepath.Join(t.TempDir(), "fleet.ck")

	clients := map[string]Client{
		"a": &panicReportClient{Client: realDaemon(t)},
		"b": &panicReportClient{Client: realDaemon(t)},
	}
	rep, err := Run(context.Background(), job, Options{
		Hosts: []string{"a", "b"}, Shards: 4, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		Retry:         retryFast(),
		Dial:          dialMap(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFold(t, rep, base, 4, wantCk, wantText)
	if rep.Degraded {
		t.Error("panicked-seed shards pushed the fleet into degraded mode")
	}
	cs := counters(rep)
	if got := cs["a"].Retried + cs["b"].Retried; got != 0 {
		t.Errorf("panicked-seed shards were charged %d retries", got)
	}
}

// TestShardCovered pins the acceptance rule: panic-reason incompletes count
// as recorded, canceled/deadline ones reject the shard.
func TestShardCovered(t *testing.T) {
	pnc := detect.IncompleteRun{Reason: harness.ReasonPanic}
	cases := []struct {
		name string
		sw   *detect.SweepReport
		want bool
	}{
		{"nil sweep", nil, false},
		{"all completed", &detect.SweepReport{Completed: 5}, true},
		{"panics recorded", &detect.SweepReport{Completed: 3,
			Incomplete: []detect.IncompleteRun{pnc, pnc}}, true},
		{"canceled seed", &detect.SweepReport{Completed: 4,
			Incomplete: []detect.IncompleteRun{{Reason: harness.ReasonCanceled}}}, false},
		{"deadline seed", &detect.SweepReport{Completed: 3,
			Incomplete: []detect.IncompleteRun{pnc, {Reason: harness.ReasonDeadline}}}, false},
		{"short range", &detect.SweepReport{Completed: 3,
			Incomplete: []detect.IncompleteRun{pnc}}, false},
	}
	for _, tc := range cases {
		if got := shardCovered(tc.sw, 5); got != tc.want {
			t.Errorf("%s: shardCovered = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFailRivalKeepsAttemptBudget: a losing runner's error while a rival is
// still live on the shard must not burn the shard's remote attempt budget or
// requeue it; a sole runner's failure still counts; a straggler erroring
// after acceptance charges nothing at all.
func TestFailRivalKeepsAttemptBudget(t *testing.T) {
	c := &coordinator{opts: Options{Retry: retryFast(), Logf: func(string, ...any) {}}}
	owner := &daemon{name: "owner"}
	s := &shardState{state: shardLeased, cancels: map[string]context.CancelFunc{
		"owner": func() {}, "thief": func() {},
	}}
	c.shards = []*shardState{s}

	c.fail(s, owner, errors.New("connection reset"))
	if s.attempts != 0 {
		t.Errorf("losing rival burned %d attempts", s.attempts)
	}
	if s.state != shardLeased {
		t.Error("shard requeued while the thief was still running")
	}

	thief := &daemon{name: "thief"}
	c.fail(s, thief, errors.New("boom"))
	if s.attempts != 1 {
		t.Errorf("sole-runner failure counted %d attempts, want 1", s.attempts)
	}
	if s.state != shardPending {
		t.Error("sole-runner failure did not requeue the shard")
	}

	done := &shardState{state: shardDone, cancels: map[string]context.CancelFunc{"late": func() {}}}
	late := &daemon{name: "late"}
	c.fail(done, late, errors.New("straggler error"))
	if late.stats.Retried != 0 {
		t.Error("straggler on a done shard was charged a retry")
	}
	if done.attempts != 0 {
		t.Error("straggler on a done shard burned an attempt")
	}
}

// TestLocalThiefWaitsForBenchedLease: a benched daemon's zeroed lease clock
// makes its shard instantly stealable by remotes but NOT by the local
// fallback while a healthy remote with attempt budget remains — one flapping
// daemon must not flip the run degraded.
func TestLocalThiefWaitsForBenchedLease(t *testing.T) {
	newCoord := func(remoteHealthy bool, attempts int) (*coordinator, *daemon, *shardState) {
		remote := &daemon{name: "a", healthy: remoteHealthy}
		c := &coordinator{
			opts: Options{Hosts: []string{"a", "b"}, Retry: retryFast(),
				LeaseTimeout: time.Minute, Logf: func(string, ...any) {}},
			daemons: []*daemon{remote, {name: "b"}},
			local:   &daemon{name: "local", local: true, healthy: true},
		}
		// Shard leased by the benched daemon b; expireLeases zeroed the
		// clock, so leasedAt stays its time.Time zero value.
		s := &shardState{state: shardLeased, attempts: attempts,
			cancels: map[string]context.CancelFunc{"b": func() {}}}
		c.shards = []*shardState{s}
		return c, remote, s
	}

	c, remote, s := newCoord(true, 0)
	if got, _, _, cancel := c.claim(context.Background(), c.local); got != nil {
		cancel()
		t.Fatal("local fallback stole a zero-clock lease while a healthy remote remained")
	}
	if got, mode, _, cancel := c.claim(context.Background(), remote); got != s || mode != claimSteal {
		t.Fatalf("healthy remote did not steal the benched lease (shard %v, mode %v)", got, mode)
	} else {
		cancel()
		c.release(s, remote)
	}

	c, _, s = newCoord(false, 0)
	if got, mode, _, cancel := c.claim(context.Background(), c.local); got != s || mode != claimSteal {
		t.Fatalf("with no healthy remote, local did not steal (shard %v, mode %v)", got, mode)
	} else {
		cancel()
	}

	c, _, s = newCoord(true, retryFast().Attempts)
	if got, _, _, cancel := c.claim(context.Background(), c.local); got != s {
		t.Fatal("with remote attempts exhausted, local did not steal")
	} else {
		cancel()
	}
}

// TestFleetValidation pins the option errors.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(context.Background(), baseJob(), Options{}); err == nil {
		t.Error("missing CheckpointBase accepted")
	}
	job := baseJob()
	job.Shards, job.Shard = 4, 0
	job.Checkpoint = "x"
	if _, err := Run(context.Background(), job, Options{CheckpointBase: "y"}); err == nil {
		t.Error("pre-sharded job accepted")
	}
}

// TestFleetHonorsContextCancel: killing the run context aborts promptly
// with an error instead of wedging on unreachable daemons.
func TestFleetHonorsContextCancel(t *testing.T) {
	base := filepath.Join(t.TempDir(), "fleet.ck")
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := Run(ctx, baseJob(), Options{
		Hosts: []string{"dead"}, Shards: 2, CheckpointBase: base,
		ProbeInterval: 10 * time.Millisecond,
		Dial:          dialMap(map[string]Client{"dead": hangForever{}}),
	})
	if err == nil {
		t.Fatal("canceled fleet run returned nil error")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("canceled run took %v to abort", d)
	}
}

// hangForever blocks every call until its context dies — including Health,
// so the daemon never turns unhealthy and the local fallback never engages.
type hangForever struct{}

func (hangForever) Enqueue(ctx context.Context, job engine.Job) (string, error) {
	<-ctx.Done()
	return "", ctx.Err()
}
func (hangForever) Result(ctx context.Context, id string) (*engine.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (hangForever) Cancel(ctx context.Context, id string) error { return nil }
func (hangForever) Health(ctx context.Context) (engine.Health, error) {
	return engine.Health{Status: "ok"}, nil
}
func (hangForever) Close() {}
