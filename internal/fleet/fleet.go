// Package fleet fans a sharded sweep across a pool of godetect daemons and
// folds the shard checkpoints byte-identically to a serial run, no matter
// which daemons slow down, refuse work, or die mid-shard.
//
// The scheduler is deliberately simple: shard state lives behind one mutex,
// and each daemon runs a pull worker that claims whatever the fleet most
// needs next — a pending shard, an expired lease to steal, or a straggling
// shard to hedge. Pull workers make load balancing emergent (a fast daemon
// simply comes back for more), and the single lock makes every transition
// (lease, steal, hedge, fail, complete) atomic without channel choreography.
//
// Correctness rests on two invariants the engine provides:
//
//   - Shard sweep records are a deterministic function of (options, seed
//     range) with no wall-clock content, so duplicate executions — retries,
//     steals, hedges — produce identical checkpoint bytes. Whichever runner
//     finishes first wins and the losers' bytes would have been the same.
//   - A shard is accepted only when its report holds a deterministic record
//     for every seed in the shard's range. Host-panicked seeds count: the
//     sweep records them and a serial run folds the same Incomplete entry.
//     Canceled or deadline-cut seeds do not — their records simply never
//     ran, and accepting such a shard would silently hole the fold (possibly
//     under a Confirmed verdict — the detector may have fired in the
//     completed prefix).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"goconcbugs/internal/detect"
	"goconcbugs/internal/engine"
	"goconcbugs/internal/harness"
)

// Client is the slice of the daemon API the fleet drives. *engine.Client
// satisfies it; tests and the local-fallback pseudo-daemon provide their
// own.
type Client interface {
	Enqueue(ctx context.Context, job engine.Job) (string, error)
	Result(ctx context.Context, id string) (*engine.Result, error)
	Cancel(ctx context.Context, id string) error
	Health(ctx context.Context) (engine.Health, error)
	Close()
}

// Options configures a fleet run.
type Options struct {
	// Hosts are daemon addresses (host:port or unix://path). Empty means
	// run everything on the local fallback engine.
	Hosts []string

	// Shards is the number of seed-range shards to fan out. Defaults to
	// max(len(Hosts), 1).
	Shards int

	// CheckpointBase is where shard checkpoints and the folded checkpoint
	// land: shard i writes CheckpointBase.shard{i}-of-{n}, the fold writes
	// CheckpointBase itself. Required.
	CheckpointBase string

	// ProbeInterval is the health-probe cadence per daemon. A daemon is
	// marked unhealthy after two consecutive probe failures (its leases
	// become instantly stealable) and healthy again after one success.
	ProbeInterval time.Duration

	// LeaseTimeout is how long a shard lease may run before another daemon
	// may steal the shard. Steals do not cancel the original runner — if it
	// was merely slow, first finisher wins.
	LeaseTimeout time.Duration

	// HedgeAfter, when positive, lets an idle daemon dispatch a duplicate
	// of a shard that has been running longer than this. 0 disables
	// hedging.
	HedgeAfter time.Duration

	// Retry shapes the per-shard requeue backoff: attempt k sleeps
	// Retry.SleepFor(k) before the shard becomes claimable again.
	// Attempts bounds REMOTE attempts per shard; once exhausted the shard
	// becomes eligible for the local fallback. Defaults: 3 attempts,
	// 100ms base, 5s cap, 0.5 jitter, seeded from the job seed.
	Retry harness.RetryOptions

	// LocalEngine configures the fallback engine. Zero value works.
	LocalEngine engine.Options

	// Dial opens a client for a host. Defaults to engine.NewClientWith
	// with a 5s connect timeout. Tests inject stubs here.
	Dial func(host string) Client

	// Logf, when non-nil, receives scheduler events (steals, hedges,
	// degradation). Nondeterministic — never fold it into verdict output.
	Logf func(format string, args ...any)
}

// DaemonReport is one daemon's slice of the fleet counters.
type DaemonReport struct {
	Name       string `json:"name"`
	Dispatched int    `json:"dispatched"`
	Completed  int    `json:"completed"`
	Retried    int    `json:"retried"`
	Stolen     int    `json:"stolen"`
	Hedged     int    `json:"hedged"`
	Busy       int    `json:"busy"`
	ProbeFails int    `json:"probeFails"`
	Healthy    bool   `json:"healthy"`
}

// Report is the fleet run's outcome: the folded result plus the scheduling
// story. Only Result carries deterministic content; everything else is
// wall-clock-and-topology-dependent and belongs on stderr.
type Report struct {
	// Result is the canonical fold — byte-for-byte what a serial sweep of
	// the same job renders (modulo the ", fold of N shards" label).
	Result *engine.Result `json:"result"`
	// Degraded reports that at least one shard ran on the local fallback
	// because the remote fleet could not complete it.
	Degraded bool `json:"degraded"`
	// LocalShards counts shards completed by the local fallback.
	LocalShards int            `json:"localShards"`
	Shards      int            `json:"shards"`
	Daemons     []DaemonReport `json:"daemons"`
}

const (
	shardPending = iota
	shardLeased
	shardDone
)

// shardState tracks one shard through pending → leased → done. A hedged or
// stolen shard is leased with several live runners; first finisher wins.
type shardState struct {
	index     int
	state     int
	attempts  int       // failed remote attempts so far
	leasedAt  time.Time // newest live lease, for steal/hedge triggers
	notBefore time.Time // backoff gate after a failure
	cancels   map[string]context.CancelFunc // live runners by daemon name
	lastOwner string // most recent lease holder, for re-dispatch accounting
	doneBy    string
}

type daemon struct {
	name   string
	client Client
	local  bool

	mu         sync.Mutex
	healthy    bool
	probeFails int
	busyUntil  time.Time
	stats      DaemonReport
	lastHealth engine.Health
}

func (d *daemon) setHealthy(ok bool) (changed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ok {
		d.probeFails = 0
		changed = !d.healthy
		d.healthy = true
		return changed
	}
	d.probeFails++
	d.stats.ProbeFails++
	if d.probeFails >= 2 && d.healthy {
		d.healthy = false
		return true
	}
	return false
}

func (d *daemon) isHealthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healthy
}

func (d *daemon) bump(f func(*DaemonReport)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

// claimMode labels why a runner picked up a shard.
type claimMode int

const (
	claimLease claimMode = iota
	claimSteal
	claimHedge
)

type coordinator struct {
	opts    Options
	job     engine.Job
	daemons []*daemon
	local   *daemon

	localOnce sync.Once
	localEng  *engine.Engine

	mu       sync.Mutex
	shards   []*shardState
	doneLeft int
	allDone  chan struct{}
	localRan int
}

// Run fans opts.Job-shaped work (job must be a plain, unsharded sweep) over
// the fleet and returns the folded report. The context bounds the whole
// run; its deadline propagates into every dispatched job.
func Run(ctx context.Context, job engine.Job, opts Options) (*Report, error) {
	if opts.CheckpointBase == "" {
		return nil, errors.New("fleet: CheckpointBase is required")
	}
	if job.Shards > 1 || job.Fold || job.InlineShard {
		return nil, errors.New("fleet: job must be an unsharded sweep; the fleet shards it")
	}
	if opts.Shards <= 0 {
		opts.Shards = len(opts.Hosts)
	}
	// A one-shard fleet cannot steal or hedge; two is the useful minimum
	// (and the engine only accepts inline shards when Shards > 1).
	if opts.Shards < 2 {
		opts.Shards = 2
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 250 * time.Millisecond
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 10 * time.Second
	}
	if opts.Retry.Attempts <= 0 {
		opts.Retry.Attempts = 3
	}
	if opts.Retry.Backoff <= 0 {
		opts.Retry.Backoff = 100 * time.Millisecond
	}
	if opts.Retry.MaxBackoff <= 0 {
		opts.Retry.MaxBackoff = 5 * time.Second
	}
	if opts.Retry.Jitter == 0 {
		opts.Retry.Jitter = 0.5
	}
	if opts.Retry.Seed == 0 {
		opts.Retry.Seed = uint64(job.Seed) + 1
	}
	if opts.Dial == nil {
		opts.Dial = func(host string) Client {
			return engine.NewClientWith(host, engine.ClientOptions{ConnectTimeout: 5 * time.Second})
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	c := &coordinator{
		opts:     opts,
		job:      job,
		doneLeft: opts.Shards,
		allDone:  make(chan struct{}),
	}
	for i := 0; i < opts.Shards; i++ {
		c.shards = append(c.shards, &shardState{index: i, cancels: map[string]context.CancelFunc{}})
	}
	for _, h := range opts.Hosts {
		// Optimistically healthy: the first dispatch races the first probe,
		// and a dead daemon fails fast at Enqueue anyway. Pessimism here
		// would stall healthy fleets for a probe round at startup.
		c.daemons = append(c.daemons, &daemon{name: h, client: opts.Dial(h), healthy: true})
	}
	c.local = &daemon{name: "local", local: true, healthy: true}
	defer func() {
		for _, d := range c.daemons {
			d.client.Close()
		}
		if c.localEng != nil {
			c.localEng.Close()
		}
	}()

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	var wg sync.WaitGroup
	for _, d := range c.daemons {
		wg.Add(1)
		go func(d *daemon) { defer wg.Done(); c.probe(runCtx, d) }(d)
		wg.Add(1)
		go func(d *daemon) { defer wg.Done(); c.work(runCtx, d) }(d)
	}
	wg.Add(1)
	go func() { defer wg.Done(); c.work(runCtx, c.local) }()

	select {
	case <-c.allDone:
	case <-ctx.Done():
		cancelAll()
		wg.Wait()
		return nil, fmt.Errorf("fleet: sweep interrupted: %w", ctx.Err())
	}
	cancelAll()
	wg.Wait()

	res, err := c.fold(ctx)
	if err != nil {
		return nil, err
	}

	rep := &Report{Result: res, Shards: opts.Shards}
	c.mu.Lock()
	rep.LocalShards = c.localRan
	c.mu.Unlock()
	rep.Degraded = rep.LocalShards > 0 && len(opts.Hosts) > 0
	for _, d := range append(append([]*daemon{}, c.daemons...), c.local) {
		d.mu.Lock()
		st := d.stats
		st.Name = d.name
		st.Healthy = d.healthy
		d.mu.Unlock()
		rep.Daemons = append(rep.Daemons, st)
	}
	return rep, nil
}

// localEngine lazily builds the fallback engine the first time degradation
// (or an all-local fleet) needs it, and wires it behind the same Client
// interface the remote runners use.
func (c *coordinator) localEngine() *engine.Engine {
	c.localOnce.Do(func() {
		c.localEng = engine.New(c.opts.LocalEngine)
		c.local.mu.Lock()
		c.local.client = &localClient{eng: c.localEng, tickets: map[string]*engine.Ticket{}}
		c.local.mu.Unlock()
	})
	return c.localEng
}

// probe keeps d's health bit fresh. Marking a daemon unhealthy zeroes its
// live leases' clocks so other daemons steal those shards immediately
// instead of waiting out the lease.
func (c *coordinator) probe(ctx context.Context, d *daemon) {
	tick := time.NewTicker(c.opts.ProbeInterval)
	defer tick.Stop()
	for {
		pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeInterval)
		h, err := d.client.Health(pctx)
		cancel()
		if err == nil && h.Status == "ok" {
			if d.setHealthy(true) {
				c.opts.Logf("fleet: daemon %s healthy", d.name)
			}
			d.mu.Lock()
			d.lastHealth = h
			d.mu.Unlock()
		} else if d.setHealthy(false) {
			c.opts.Logf("fleet: daemon %s unhealthy, releasing its leases", d.name)
			c.expireLeases(d)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// expireLeases makes every shard d is running instantly stealable.
func (c *coordinator) expireLeases(d *daemon) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		if s.state == shardLeased {
			if _, ok := s.cancels[d.name]; ok {
				s.leasedAt = time.Time{}
			}
		}
	}
}

func (c *coordinator) healthyRemotes() int {
	n := 0
	for _, d := range c.daemons {
		if d.isHealthy() {
			n++
		}
	}
	return n
}

// work is the per-daemon pull loop: claim, run, repeat.
func (c *coordinator) work(ctx context.Context, d *daemon) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.allDone:
			return
		default:
		}
		if !d.isHealthy() {
			sleepCtx(ctx, 20*time.Millisecond)
			continue
		}
		d.mu.Lock()
		busy := time.Until(d.busyUntil)
		d.mu.Unlock()
		if busy > 0 {
			sleepCtx(ctx, busy)
			continue
		}
		s, mode, rctx, rcancel := c.claim(ctx, d)
		if s == nil {
			sleepCtx(ctx, 10*time.Millisecond)
			continue
		}
		c.runShard(rctx, rcancel, d, s, mode)
	}
}

// claim picks the next shard for d under the scheduler lock: a claimable
// pending shard first, then an expired (or orphaned) lease to steal, then —
// with hedging on — the longest-running solo shard to duplicate. The
// returned context governs the runner; a rival completing the shard first
// cancels it through the registered func.
func (c *coordinator) claim(ctx context.Context, d *daemon) (*shardState, claimMode, context.Context, context.CancelFunc) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	lease := func(s *shardState, mode claimMode) (*shardState, claimMode, context.Context, context.CancelFunc) {
		rctx, rcancel := context.WithCancel(ctx)
		s.state = shardLeased
		// The newest runner restarts the clock: a just-stolen or just-hedged
		// shard is not instantly re-stealable.
		s.leasedAt = now
		s.lastOwner = d.name
		s.cancels[d.name] = rcancel
		return s, mode, rctx, rcancel
	}

	for _, s := range c.shards {
		if s.state != shardPending || now.Before(s.notBefore) {
			continue
		}
		// The local fallback only takes a shard the remotes cannot do:
		// remote attempts exhausted, or no healthy remote exists.
		if d.local && len(c.opts.Hosts) > 0 &&
			s.attempts < c.opts.Retry.Attempts && c.healthyRemotes() > 0 {
			continue
		}
		// Re-dispatching another daemon's failed or dropped shard is a
		// steal for accounting: the work moved off its last owner. (A
		// killed daemon's shards come back through this path — its socket
		// errors out rather than hanging, so no lease ever expires.)
		if s.lastOwner != "" && s.lastOwner != d.name {
			return lease(s, claimSteal)
		}
		return lease(s, claimLease)
	}
	for _, s := range c.shards {
		if s.state != shardLeased {
			continue
		}
		if _, mine := s.cancels[d.name]; mine {
			continue
		}
		expired := s.leasedAt.IsZero() || now.Sub(s.leasedAt) > c.opts.LeaseTimeout
		if !expired {
			continue
		}
		// The local fallback is the thief of last resort: it waits out a
		// second lease window so a healthy remote gets first claim, unless
		// no remote could possibly take it. A zeroed lease clock (the
		// owner was benched) makes the shard instantly stealable by
		// remotes only — the local worker still defers while a healthy
		// remote has attempts left, so one flapping daemon cannot flip the
		// run degraded.
		if d.local && len(c.opts.Hosts) > 0 &&
			s.attempts < c.opts.Retry.Attempts && c.healthyRemotes() > 0 &&
			(s.leasedAt.IsZero() || now.Sub(s.leasedAt) <= 2*c.opts.LeaseTimeout) {
			continue
		}
		return lease(s, claimSteal)
	}
	if c.opts.HedgeAfter > 0 && !d.local {
		var best *shardState
		for _, s := range c.shards {
			if s.state != shardLeased || len(s.cancels) != 1 {
				continue
			}
			if _, mine := s.cancels[d.name]; mine {
				continue
			}
			if now.Sub(s.leasedAt) > c.opts.HedgeAfter {
				if best == nil || s.leasedAt.Before(best.leasedAt) {
					best = s
				}
			}
		}
		if best != nil {
			return lease(best, claimHedge)
		}
	}
	return nil, 0, nil, nil
}

// shardJob builds the dispatchable job for shard i: the template plus shard
// coordinates, inline checkpoint return, and the run deadline.
func (c *coordinator) shardJob(ctx context.Context, i int) engine.Job {
	job := c.job
	job.Shards = c.opts.Shards
	job.Shard = i
	job.InlineShard = true
	job.Checkpoint = ""
	if dl, ok := ctx.Deadline(); ok {
		job.Deadline = time.Until(dl)
	}
	return job
}

// runShard executes one claimed attempt. rctx dies when the fleet run ends
// or when a rival runner completes the shard first.
func (c *coordinator) runShard(rctx context.Context, rcancel context.CancelFunc, d *daemon, s *shardState, mode claimMode) {
	defer rcancel()
	switch mode {
	case claimSteal:
		d.bump(func(r *DaemonReport) { r.Stolen++ })
		c.opts.Logf("fleet: %s steals shard %d", d.name, s.index)
	case claimHedge:
		d.bump(func(r *DaemonReport) { r.Hedged++ })
		c.opts.Logf("fleet: %s hedges shard %d", d.name, s.index)
	}

	client := d.client
	if d.local {
		c.localEngine()
		d.mu.Lock()
		client = d.client
		d.mu.Unlock()
	}

	d.bump(func(r *DaemonReport) { r.Dispatched++ })
	job := c.shardJob(rctx, s.index)
	id, err := client.Enqueue(rctx, job)
	if err != nil {
		if errors.Is(err, engine.ErrBusy) {
			d.mu.Lock()
			d.busyUntil = time.Now().Add(c.opts.Retry.SleepFor(1))
			d.stats.Busy++
			d.mu.Unlock()
			c.opts.Logf("fleet: daemon %s busy, rerouting shard %d", d.name, s.index)
			c.release(s, d)
			return
		}
		if rctx.Err() != nil {
			// Rival won (or the fleet is shutting down) mid-enqueue — a
			// cancellation, not a daemon failure.
			c.release(s, d)
			return
		}
		c.fail(s, d, fmt.Errorf("enqueue: %w", err))
		return
	}
	res, err := client.Result(rctx, id)
	if rctx.Err() != nil {
		// Canceled, not failed: either a rival runner won the shard (its
		// bytes would have been identical) or the whole fleet is shutting
		// down. Stop the duplicate remotely, best effort, and walk away
		// without charging anyone a failure.
		cctx, ccancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = client.Cancel(cctx, id)
		ccancel()
		c.release(s, d)
		return
	}
	lo, hi := harness.Shard(c.job.Runs, c.opts.Shards, s.index)
	switch {
	case err != nil:
		c.fail(s, d, err)
	case len(res.ShardCheckpoint) == 0:
		c.fail(s, d, errors.New("no inline shard checkpoint in result"))
	case !shardCovered(res.Sweep, hi-lo):
		// A deadline- or cancel-cut sweep folds partial records; accepting
		// it would hole the final fold even if its verdict looks Confirmed.
		c.fail(s, d, fmt.Errorf("shard incomplete: %d of %d seeds recorded", recordedSeeds(res.Sweep), hi-lo))
	default:
		c.complete(s, d, res.ShardCheckpoint)
	}
}

// shardCovered reports whether a shard sweep produced a deterministic record
// for every seed in its range. Host-panicked seeds count as covered — the
// sweep excludes them from Completed but records them, and a serial run folds
// the identical Incomplete entry. Canceled- or deadline-cut seeds never ran,
// so a shard containing one must be retried, not folded.
func shardCovered(sw *detect.SweepReport, want int) bool {
	if sw == nil {
		return false
	}
	for _, inc := range sw.Incomplete {
		if inc.Reason != harness.ReasonPanic {
			return false
		}
	}
	return sw.Completed+len(sw.Incomplete) == want
}

// recordedSeeds counts the seeds a shard sweep has deterministic records for
// (completed plus host-panicked), for failure messages.
func recordedSeeds(sw *detect.SweepReport) int {
	if sw == nil {
		return 0
	}
	n := sw.Completed
	for _, inc := range sw.Incomplete {
		if inc.Reason == harness.ReasonPanic {
			n++
		}
	}
	return n
}

// release drops d's runner from s without charging a failure (busy reroute,
// lost hedge). If no runners remain and the shard is not done, it returns
// to pending.
func (c *coordinator) release(s *shardState, d *daemon) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(s.cancels, d.name)
	if s.state == shardLeased && len(s.cancels) == 0 {
		s.state = shardPending
	}
}

// fail requeues s after a runner error, with jittered backoff per attempt.
// An attempt is charged against the shard only when the failing runner was
// its sole live runner — a losing rival's error (say, a stolen shard's dead
// original owner) must not burn the shard's remote attempt budget while the
// thief is running fine, and a straggler losing to an already-accepted
// result charges nothing at all. The failing daemon itself still sits out
// one backoff step on any genuine error: a dead daemon otherwise cycles
// through every pending shard faster than the health prober can bench it.
func (c *coordinator) fail(s *shardState, d *daemon, err error) {
	c.mu.Lock()
	delete(s.cancels, d.name)
	if s.state == shardDone {
		c.mu.Unlock()
		return
	}
	solo := len(s.cancels) == 0
	if solo {
		s.attempts++
		s.notBefore = time.Now().Add(c.opts.Retry.SleepFor(s.attempts))
		s.state = shardPending
	}
	attempts := s.attempts
	c.mu.Unlock()

	d.mu.Lock()
	d.stats.Retried++
	if until := time.Now().Add(c.opts.Retry.SleepFor(1)); until.After(d.busyUntil) {
		d.busyUntil = until
	}
	d.mu.Unlock()
	if solo {
		c.opts.Logf("fleet: shard %d failed on %s (attempt %d): %v", s.index, d.name, attempts, err)
	} else {
		c.opts.Logf("fleet: shard %d runner %s errored; rival still live, no attempt charged: %v", s.index, d.name, err)
	}
}

// complete accepts the first full checkpoint for s, writes the shard file
// immediately (so observers — and the chaos smoke — see progress), and
// cancels rival runners.
func (c *coordinator) complete(s *shardState, d *daemon, data []byte) {
	c.mu.Lock()
	if s.state == shardDone {
		c.mu.Unlock()
		return
	}
	s.state = shardDone
	s.doneBy = d.name
	delete(s.cancels, d.name)
	rivals := make([]context.CancelFunc, 0, len(s.cancels))
	for _, fn := range s.cancels {
		rivals = append(rivals, fn)
	}
	s.cancels = map[string]context.CancelFunc{}
	if d.local {
		c.localRan++
	}
	c.doneLeft--
	last := c.doneLeft == 0
	c.mu.Unlock()

	for _, fn := range rivals {
		fn()
	}
	d.bump(func(r *DaemonReport) { r.Completed++ })

	path := engine.ShardCheckpointName(c.opts.CheckpointBase, s.index, c.opts.Shards)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		// An unwritable checkpoint dir fails the fold loudly later; the
		// shard's work is still done.
		c.opts.Logf("fleet: writing %s: %v", path, err)
	}
	c.opts.Logf("fleet: shard %d done by %s", s.index, d.name)
	if last {
		close(c.allDone)
	}
}

// fold merges the shard checkpoints through the local engine, producing the
// canonical result text and the byte-identical merged checkpoint.
func (c *coordinator) fold(ctx context.Context) (*engine.Result, error) {
	job := c.job
	job.Shards = c.opts.Shards
	job.Fold = true
	job.Checkpoint = c.opts.CheckpointBase
	res, err := c.localEngine().Submit(ctx, job)
	if err != nil {
		return nil, fmt.Errorf("fleet: folding shards: %w", err)
	}
	return res, nil
}

// localClient adapts the in-process fallback engine to the Client surface,
// so degradation reuses the exact runner path the remotes take.
type localClient struct {
	eng *engine.Engine

	mu      sync.Mutex
	tickets map[string]*engine.Ticket
}

func (l *localClient) Enqueue(ctx context.Context, job engine.Job) (string, error) {
	t, err := l.eng.Enqueue(job)
	if err != nil {
		return "", err
	}
	l.mu.Lock()
	l.tickets[t.ID] = t
	l.mu.Unlock()
	return t.ID, nil
}

func (l *localClient) ticket(id string) (*engine.Ticket, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t := l.tickets[id]; t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("fleet: no local job %q", id)
}

func (l *localClient) Result(ctx context.Context, id string) (*engine.Result, error) {
	t, err := l.ticket(id)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

func (l *localClient) Cancel(ctx context.Context, id string) error {
	t, err := l.ticket(id)
	if err != nil {
		return err
	}
	t.Cancel()
	return nil
}

func (l *localClient) Health(ctx context.Context) (engine.Health, error) {
	return l.eng.Health(), nil
}

func (l *localClient) Close() {}

// sleepCtx sleeps d or until ctx dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
