// Package core is the library's front door: it regenerates every table and
// figure of the paper's evaluation from the reimplemented substrates — the
// corpus (Tables 1, 5, 6, 7, 9, 10, 11; Figure 4), the kernel + detector
// experiments (Tables 8 and 12), the static analyzers (Tables 2 and 4), the
// RPC substrate (Table 3), and the evolution model (Figures 2 and 3).
package core

import (
	"fmt"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/report"
	"goconcbugs/internal/stats"
)

// Study configures experiment regeneration.
type Study struct {
	// Runs is the per-kernel run count for the race-detector experiment
	// (the paper used 100).
	Runs int
	// BaseSeed seeds every simulated experiment.
	BaseSeed int64
	// SourceRoot is the directory holding the six synthetic application
	// trees for the static measurements (testdata/apps in this repo).
	SourceRoot string
}

// NewStudy returns a Study with the paper's protocol defaults.
func NewStudy() *Study {
	return &Study{Runs: 100, BaseSeed: 1, SourceRoot: "testdata/apps"}
}

func (s *Study) runs() int {
	if s.Runs <= 0 {
		return 100
	}
	return s.Runs
}

// Table1 renders the studied-application facts.
func (s *Study) Table1() *report.Table {
	t := &report.Table{
		Title:  "Table 1: Information of selected applications",
		Header: []string{"Application", "Stars", "Commits", "Contributors", "LOC", "Dev History"},
		Note:   "stars for Docker/Kubernetes, all LOC and histories are the paper's; remaining cells reconstructed",
	}
	for _, a := range corpus.AppInfos() {
		t.AddRow(string(a.App), report.Itoa(a.Stars), report.Itoa(a.Commits),
			report.Itoa(a.Contributors), report.Itoa(a.LOC), fmt.Sprintf("%.1f years", a.DevYears))
	}
	return t
}

// Table5 renders the taxonomy breakdown per application.
func (s *Study) Table5() *report.Table {
	t := &report.Table{
		Title:  "Table 5: Taxonomy",
		Header: []string{"Application", "blocking", "non-blocking", "shared memory", "message passing"},
	}
	type row struct{ b, nb, sm, mp int }
	rows := map[corpus.App]*row{}
	for _, a := range corpus.Apps {
		rows[a] = &row{}
	}
	for _, bug := range corpus.Bugs() {
		r := rows[bug.App]
		if bug.Behavior == corpus.Blocking {
			r.b++
		} else {
			r.nb++
		}
		if bug.Cause == corpus.SharedMemory {
			r.sm++
		} else {
			r.mp++
		}
	}
	var tb, tnb, tsm, tmp int
	for _, a := range corpus.Apps {
		r := rows[a]
		t.AddRow(string(a), report.Itoa(r.b), report.Itoa(r.nb), report.Itoa(r.sm), report.Itoa(r.mp))
		tb += r.b
		tnb += r.nb
		tsm += r.sm
		tmp += r.mp
	}
	t.AddRow("Total", report.Itoa(tb), report.Itoa(tnb), report.Itoa(tsm), report.Itoa(tmp))
	return t
}

// Table6 renders blocking-bug root causes per application.
func (s *Study) Table6() *report.Table {
	t := &report.Table{
		Title:  "Table 6: Blocking bug causes",
		Header: []string{"Application", "Mutex", "RWMutex", "Wait", "Chan", "Chan w/", "Lib", "Total"},
	}
	counts := map[corpus.App]map[corpus.BlockingCause]int{}
	for _, a := range corpus.Apps {
		counts[a] = map[corpus.BlockingCause]int{}
	}
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.Blocking {
			counts[b.App][b.BlockingCause]++
		}
	}
	totals := map[corpus.BlockingCause]int{}
	for _, a := range corpus.Apps {
		row := []string{string(a)}
		sum := 0
		for _, c := range corpus.BlockingCauses {
			n := counts[a][c]
			row = append(row, report.Itoa(n))
			totals[c] += n
			sum += n
		}
		row = append(row, report.Itoa(sum))
		t.AddRow(row...)
	}
	row := []string{"Total"}
	sum := 0
	for _, c := range corpus.BlockingCauses {
		row = append(row, report.Itoa(totals[c]))
		sum += totals[c]
	}
	row = append(row, report.Itoa(sum))
	t.AddRow(row...)
	return t
}

// Table7 renders blocking fix strategies per cause, with the lift ranking
// over categories of at least minRow bugs (the paper uses 10).
func (s *Study) Table7() (*report.Table, []stats.LiftEntry) {
	cont := blockingContingency()
	t := contingencyTable("Table 7: Fix strategies for blocking bugs", cont)
	return t, cont.LiftRanking(10)
}

// Table9 renders non-blocking root causes per application.
func (s *Study) Table9() *report.Table {
	t := &report.Table{
		Title: "Table 9: Root causes of non-blocking bugs",
		Header: []string{"Application", "traditional", "anonymous", "waitgroup", "lib",
			"chan", "lib (msg)", "Total"},
	}
	counts := map[corpus.App]map[corpus.NonBlockingCause]int{}
	for _, a := range corpus.Apps {
		counts[a] = map[corpus.NonBlockingCause]int{}
	}
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.NonBlocking {
			counts[b.App][b.NonBlockingCause]++
		}
	}
	totals := map[corpus.NonBlockingCause]int{}
	for _, a := range corpus.Apps {
		row := []string{string(a)}
		sum := 0
		for _, c := range corpus.NonBlockingCauses {
			n := counts[a][c]
			row = append(row, report.Itoa(n))
			totals[c] += n
			sum += n
		}
		row = append(row, report.Itoa(sum))
		t.AddRow(row...)
	}
	row := []string{"Total"}
	sum := 0
	for _, c := range corpus.NonBlockingCauses {
		row = append(row, report.Itoa(totals[c]))
		sum += totals[c]
	}
	row = append(row, report.Itoa(sum))
	t.AddRow(row...)
	return t
}

// Table10 renders non-blocking fix strategies per cause with lifts.
func (s *Study) Table10() (*report.Table, []stats.LiftEntry) {
	cont := nonBlockingStrategyContingency()
	t := contingencyTable("Table 10: Fix strategies for non-blocking bugs", cont)
	return t, cont.LiftRanking(10)
}

// Table11 renders patch primitives per cause with lifts. Entries, not
// bugs: a patch can use several primitives, as the paper's 94-entry table
// shows for 86 bugs.
func (s *Study) Table11() (*report.Table, []stats.LiftEntry) {
	cont := nonBlockingPrimitiveContingency()
	t := contingencyTable("Table 11: Synchronization primitives in patches of non-blocking bugs", cont)
	return t, cont.LiftRanking(10)
}

// Figure4 renders the bug lifetime CDFs for the two cause classes.
func (s *Study) Figure4() *report.Figure {
	fig := &report.Figure{
		Title:  "Figure 4: Bug life time (CDF)",
		XLabel: "days from buggy commit to fix",
		YLabel: "fraction of bugs",
	}
	for _, cause := range []corpus.Cause{corpus.SharedMemory, corpus.MessagePassing} {
		var days []float64
		for _, b := range corpus.Bugs() {
			if b.Cause == cause {
				days = append(days, float64(b.LifetimeDays))
			}
		}
		cdf := stats.NewCDF(days)
		fig.Series = append(fig.Series, report.Series{
			Label:  string(cause),
			Points: cdf.Points(24),
		})
	}
	return fig
}

// LifetimeMedians returns the per-cause median lifetimes in days.
func (s *Study) LifetimeMedians() map[corpus.Cause]float64 {
	out := map[corpus.Cause]float64{}
	for _, cause := range []corpus.Cause{corpus.SharedMemory, corpus.MessagePassing} {
		var days []float64
		for _, b := range corpus.Bugs() {
			if b.Cause == cause {
				days = append(days, float64(b.LifetimeDays))
			}
		}
		out[cause] = stats.NewCDF(days).Median()
	}
	return out
}

// --- contingency builders ---

func blockingContingency() *stats.Contingency {
	rows := make([]string, 0, len(corpus.BlockingCauses))
	for _, c := range corpus.BlockingCauses {
		rows = append(rows, string(c))
	}
	cols := make([]string, 0, len(corpus.BlockingFixStrategies))
	for _, f := range corpus.BlockingFixStrategies {
		cols = append(cols, string(f))
	}
	cont := stats.NewContingency(rows, cols)
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.Blocking {
			cont.Add(string(b.BlockingCause), string(b.FixStrategy), 1)
		}
	}
	return cont
}

func nonBlockingStrategyContingency() *stats.Contingency {
	rows := make([]string, 0, len(corpus.NonBlockingCauses))
	for _, c := range corpus.NonBlockingCauses {
		rows = append(rows, string(c))
	}
	cols := make([]string, 0, len(corpus.NonBlockingFixStrategies))
	for _, f := range corpus.NonBlockingFixStrategies {
		cols = append(cols, string(f))
	}
	cont := stats.NewContingency(rows, cols)
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.NonBlocking {
			cont.Add(string(b.NonBlockingCause), string(b.FixStrategy), 1)
		}
	}
	return cont
}

func nonBlockingPrimitiveContingency() *stats.Contingency {
	rows := make([]string, 0, len(corpus.NonBlockingCauses))
	for _, c := range corpus.NonBlockingCauses {
		rows = append(rows, string(c))
	}
	cols := make([]string, 0, len(corpus.FixPrimitives))
	for _, p := range corpus.FixPrimitives {
		cols = append(cols, string(p))
	}
	cont := stats.NewContingency(rows, cols)
	for _, b := range corpus.Bugs() {
		if b.Behavior != corpus.NonBlocking {
			continue
		}
		for _, p := range b.PatchPrimitives {
			cont.Add(string(b.NonBlockingCause), string(p), 1)
		}
	}
	return cont
}

func contingencyTable(title string, c *stats.Contingency) *report.Table {
	t := &report.Table{Title: title, Header: append([]string{""}, append(c.ColLabels, "Total")...)}
	for i, r := range c.RowLabels {
		row := []string{r}
		for j := range c.ColLabels {
			row = append(row, report.Itoa(c.Counts[i][j]))
		}
		row = append(row, report.Itoa(c.RowTotal(r)))
		t.AddRow(row...)
	}
	total := []string{"Total"}
	for _, col := range c.ColLabels {
		total = append(total, report.Itoa(c.ColTotal(col)))
	}
	total = append(total, report.Itoa(c.Total()))
	t.AddRow(total...)
	return t
}
