package core

import (
	"fmt"
	"io"

	"goconcbugs/internal/corpus"
)

// Summary is the one-call programmatic result of the whole study: every
// headline number a consumer (or a CI gate) would assert on.
type Summary struct {
	// Dataset headline counts.
	Bugs, Blocking, NonBlocking  int
	SharedMemory, MessagePassing int
	// Detector experiments.
	Table8Used, Table8Detected   int
	Table8LeakDetected           int
	Table12Used, Table12Detected int
	Table12EveryRun, Table12Rare int
	// Correlations.
	LiftMutexMove, LiftChanAdd    float64
	LiftAnonPrivate, LiftChanMove float64
	LiftChanChannelPrim           float64
	// Lifetimes (days).
	MedianLifetimeShared  float64
	MedianLifetimeMessage float64
	// Observation verdicts, keyed by number.
	Observations map[int]bool
}

// Summarize runs the study end to end. It is the expensive call behind
// `gobugstudy` with no flags; expect seconds at the 100-run protocol.
func (s *Study) Summarize() *Summary {
	sum := &Summary{Observations: map[int]bool{}}
	for _, b := range corpus.Bugs() {
		sum.Bugs++
		if b.Behavior == corpus.Blocking {
			sum.Blocking++
		} else {
			sum.NonBlocking++
		}
		if b.Cause == corpus.SharedMemory {
			sum.SharedMemory++
		} else {
			sum.MessagePassing++
		}
	}
	_, t8 := s.Table8()
	sum.Table8Used = len(t8.Verdicts)
	sum.Table8Detected = t8.BuiltinDetected
	sum.Table8LeakDetected = t8.LeakDetected
	_, t12 := s.Table12()
	sum.Table12Used = len(t12.Verdicts)
	sum.Table12Detected = t12.TotalDetected
	sum.Table12EveryRun = t12.EveryRun
	sum.Table12Rare = t12.Rare
	_, blockingLifts := s.Table7()
	for _, e := range blockingLifts {
		switch {
		case e.Row == string(corpus.BCMutex) && e.Col == string(corpus.MoveSync):
			sum.LiftMutexMove = e.Lift
		case e.Row == string(corpus.BCChan) && e.Col == string(corpus.AddSync):
			sum.LiftChanAdd = e.Lift
		}
	}
	_, nbLifts := s.Table10()
	for _, e := range nbLifts {
		switch {
		case e.Row == string(corpus.NBAnonymous) && e.Col == string(corpus.DataPrivate):
			sum.LiftAnonPrivate = e.Lift
		case e.Row == string(corpus.NBChan) && e.Col == string(corpus.MoveSync):
			sum.LiftChanMove = e.Lift
		}
	}
	_, primLifts := s.Table11()
	for _, e := range primLifts {
		if e.Row == string(corpus.NBChan) && e.Col == string(corpus.FPChannel) {
			sum.LiftChanChannelPrim = e.Lift
		}
	}
	medians := s.LifetimeMedians()
	sum.MedianLifetimeShared = medians[corpus.SharedMemory]
	sum.MedianLifetimeMessage = medians[corpus.MessagePassing]
	for _, o := range s.Observations() {
		sum.Observations[o.Number] = o.Holds
	}
	return sum
}

// WriteTo renders the summary as a compact report card.
func (s *Summary) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := p("dataset: %d bugs (%d blocking / %d non-blocking; %d shared / %d message)\n",
		s.Bugs, s.Blocking, s.NonBlocking, s.SharedMemory, s.MessagePassing); err != nil {
		return n, err
	}
	if err := p("table 8:  builtin %d/%d, leak detector %d/%d\n",
		s.Table8Detected, s.Table8Used, s.Table8LeakDetected, s.Table8Used); err != nil {
		return n, err
	}
	if err := p("table 12: race detector %d/%d (%d every run, %d rare)\n",
		s.Table12Detected, s.Table12Used, s.Table12EveryRun, s.Table12Rare); err != nil {
		return n, err
	}
	if err := p("lifts: Mutex->Move %.2f, Chan->Add %.2f, anon->Private %.2f, chan->Move %.2f, chan->Channel %.2f\n",
		s.LiftMutexMove, s.LiftChanAdd, s.LiftAnonPrivate, s.LiftChanMove, s.LiftChanChannelPrim); err != nil {
		return n, err
	}
	if err := p("median lifetimes: shared %.0fd, message %.0fd\n",
		s.MedianLifetimeShared, s.MedianLifetimeMessage); err != nil {
		return n, err
	}
	holds := 0
	for _, ok := range s.Observations {
		if ok {
			holds++
		}
	}
	err := p("observations holding: %d/%d\n", holds, len(s.Observations))
	return n, err
}
