package core

import (
	"fmt"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/evolution"
	"goconcbugs/internal/rpc"
	"goconcbugs/internal/stats"
)

// Observation pairs one of the paper's nine numbered observations with the
// check this reproduction runs for it.
type Observation struct {
	Number int
	Claim  string
	Holds  bool
	Detail string
}

// Observations evaluates every observation the reproduction can measure.
// Tables 2/3/8/12-backed ones re-run their experiments, so this is not
// instant.
func (s *Study) Observations() []Observation {
	var obs []Observation

	// Observation 1: goroutines are shorter but created more frequently
	// than C threads.
	cmp := rpc.Compare(rpc.Workloads()[0])
	obs = append(obs, Observation{
		Number: 1,
		Claim:  "Goroutines are shorter but created more frequently than C threads",
		Holds:  cmp.ServerCreateRatio > 1 && cmp.Go.ServerNormLifetime < cmp.C.ServerNormLifetime,
		Detail: fmt.Sprintf("create ratio %.1fx, normalized lifetime %.0f%% vs %.0f%%",
			cmp.ServerCreateRatio, cmp.Go.ServerNormLifetime*100, cmp.C.ServerNormLifetime*100),
	})

	// Observation 2: heavy shared-memory use persists alongside
	// significant message passing, stable over time.
	stable := true
	var worst float64
	for _, app := range corpus.Apps {
		_, dev := evolution.Stability(evolution.Series(app))
		if dev > worst {
			worst = dev
		}
		if dev > 0.10 {
			stable = false
		}
	}
	obs = append(obs, Observation{
		Number: 2,
		Claim:  "Both synchronization styles are heavily used and their mix is stable over time",
		Holds:  stable,
		Detail: fmt.Sprintf("max share deviation over 40 months: %.1f%%", worst*100),
	})

	// Observation 3: more blocking bugs from message passing than shared
	// memory.
	var mpBlocking, smBlocking int
	for _, b := range corpus.Bugs() {
		if b.Behavior != corpus.Blocking {
			continue
		}
		if b.Cause == corpus.MessagePassing {
			mpBlocking++
		} else {
			smBlocking++
		}
	}
	obs = append(obs, Observation{
		Number: 3,
		Claim:  "More blocking bugs are caused by message passing than by shared memory",
		Holds:  mpBlocking > smBlocking,
		Detail: fmt.Sprintf("%d message-passing vs %d shared-memory blocking bugs (%.0f%%/%.0f%%)",
			mpBlocking, smBlocking, pct(mpBlocking, 85), pct(smBlocking, 85)),
	})

	// Observation 4: shared-memory blocking bugs mostly traditional, a
	// few Go-specific (RWMutex, WaitGroup semantics).
	var rwWait int
	for _, b := range corpus.Bugs() {
		if b.BlockingCause == corpus.BCRWMutex || b.BlockingCause == corpus.BCWait {
			rwWait++
		}
	}
	obs = append(obs, Observation{
		Number: 4,
		Claim:  "Most shared-memory blocking bugs are traditional; a few stem from Go's new semantics",
		Holds:  rwWait > 0 && rwWait < 36/2,
		Detail: fmt.Sprintf("%d of 36 shared-memory blocking bugs are RWMutex/Wait class", rwWait),
	})

	// Observation 5 (text garbled in the source extraction; reconstructed
	// from Section 5.1.2's framing): every message-passing blocking bug
	// involves Go's new message-passing constructs — channels, often
	// combined with other primitives, or the messaging libraries.
	mpAllNew := true
	for _, b := range corpus.Bugs() {
		if b.Behavior != corpus.Blocking || b.Cause != corpus.MessagePassing {
			continue
		}
		switch b.BlockingCause {
		case corpus.BCChan, corpus.BCChanW, corpus.BCLib:
		default:
			mpAllNew = false
		}
	}
	obs = append(obs, Observation{
		Number: 5,
		Claim:  "Message-passing blocking bugs all stem from Go's new channel semantics and messaging libraries",
		Holds:  mpAllNew,
		Detail: "every message-passing blocking bug is Chan, Chan w/, or a messaging-library bug",
	})

	// Observation 6: fixes are simple and correlated with causes.
	_, lifts := s.Table7()
	top := ""
	holds6 := false
	if len(lifts) > 0 {
		top = fmt.Sprintf("top lift %s->%s = %.2f", lifts[0].Row, lifts[0].Col, lifts[0].Lift)
		holds6 = lifts[0].Row == string(corpus.BCMutex) && lifts[0].Col == string(corpus.MoveSync) &&
			lifts[0].Lift > 1.4
	}
	var patch []float64
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.Blocking {
			patch = append(patch, float64(b.PatchLines))
		}
	}
	mean := stats.Mean(patch)
	obs = append(obs, Observation{
		Number: 6,
		Claim:  "Blocking fixes are simple (≈6.8 lines) and correlated with causes",
		Holds:  holds6 && mean < 9,
		Detail: fmt.Sprintf("%s; mean blocking patch %.1f lines", top, mean),
	})

	// Observation 7: about two thirds of shared-memory non-blocking bugs
	// are traditional.
	var trad, sharedNB int
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.NonBlocking && b.Cause == corpus.SharedMemory {
			sharedNB++
			if b.NonBlockingCause == corpus.NBTraditional {
				trad++
			}
		}
	}
	frac := float64(trad) / float64(sharedNB)
	obs = append(obs, Observation{
		Number: 7,
		Claim:  "About two thirds of shared-memory non-blocking bugs have traditional causes",
		Holds:  frac > 0.55 && frac < 0.80,
		Detail: fmt.Sprintf("%d/%d = %.0f%%", trad, sharedNB, frac*100),
	})

	// Observation 8: far fewer non-blocking bugs from message passing.
	var mpNB int
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.NonBlocking && b.Cause == corpus.MessagePassing {
			mpNB++
		}
	}
	obs = append(obs, Observation{
		Number: 8,
		Claim:  "Much fewer non-blocking bugs come from message passing than shared memory",
		Holds:  mpNB < 86-mpNB,
		Detail: fmt.Sprintf("%d of 86 (%.0f%%)", mpNB, pct(mpNB, 86)),
	})

	// Observation 9: mutex is the top fix primitive; channel second and
	// used for shared-memory bugs too.
	_, primLifts := s.Table11()
	cont := nonBlockingPrimitiveContingency()
	mutexTop := cont.ColTotal(string(corpus.FPMutex)) >= cont.ColTotal(string(corpus.FPChannel))
	chanForShared := 0
	for _, b := range corpus.Bugs() {
		if b.Behavior == corpus.NonBlocking && b.Cause == corpus.SharedMemory {
			for _, p := range b.PatchPrimitives {
				if p == corpus.FPChannel {
					chanForShared++
				}
			}
		}
	}
	obs = append(obs, Observation{
		Number: 9,
		Claim:  "Mutex remains the main fix primitive; channel is second and also fixes shared-memory bugs",
		Holds:  mutexTop && chanForShared > 0 && len(primLifts) > 0,
		Detail: fmt.Sprintf("Mutex %d vs Channel %d entries; %d channel fixes for shared-memory bugs",
			cont.ColTotal(string(corpus.FPMutex)), cont.ColTotal(string(corpus.FPChannel)), chanForShared),
	})

	return obs
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}
