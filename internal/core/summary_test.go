package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := testStudy()
	sum := s.Summarize()
	if sum.Bugs != 171 || sum.Blocking != 85 || sum.NonBlocking != 86 {
		t.Fatalf("dataset counts: %+v", sum)
	}
	if sum.Table8Detected != 2 || sum.Table8Used != 21 || sum.Table8LeakDetected != 21 {
		t.Fatalf("table 8: %+v", sum)
	}
	if sum.Table12Detected != 10 || sum.Table12Used != 20 {
		t.Fatalf("table 12: %+v", sum)
	}
	if sum.LiftMutexMove < 1.4 || sum.LiftAnonPrivate < 2.0 || sum.LiftChanChannelPrim < 2.4 {
		t.Fatalf("lifts: %+v", sum)
	}
	for n, ok := range sum.Observations {
		if !ok {
			t.Errorf("observation %d fails", n)
		}
	}
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"171 bugs", "builtin 2/21", "race detector 10/20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report card missing %q:\n%s", want, out)
		}
	}
}
