package core

import (
	"testing"

	"goconcbugs/internal/vet"
)

func TestDetectorComparisonShape(t *testing.T) {
	s := testStudy()
	s.Runs = 30
	_, cmp := s.DetectorComparisonTable()
	if cmp.Kernels < 41 {
		t.Fatalf("compared %d kernels, want at least the 41 study kernels", cmp.Kernels)
	}
	if cmp.Builtin < 2 {
		t.Errorf("builtin detected %d, want >= 2", cmp.Builtin)
	}
	if cmp.Race != 10 {
		t.Errorf("race detected %d, want 10 (Table 12)", cmp.Race)
	}
	// The leak detector dominates the builtin on blocking bugs.
	if cmp.Leak <= cmp.Builtin {
		t.Errorf("leak (%d) should dominate builtin (%d)", cmp.Leak, cmp.Builtin)
	}
	// The rule checker catches the figure bugs the others miss.
	wantVet := map[string]vet.Rule{
		"docker-24007-double-close": vet.RuleDoubleClose,
		"etcd-waitgroup-order":      vet.RuleAddAfterWait,
		"boltdb-240-chan-mutex":     vet.RuleChanInCritical,
	}
	for _, row := range cmp.Rows {
		rule, ok := wantVet[row.Kernel.ID]
		if !ok {
			continue
		}
		if !row.Vet {
			t.Errorf("%s: vet missed it", row.Kernel.ID)
			continue
		}
		found := false
		for _, r := range row.VetRules {
			if r == rule {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: vet fired %v, want %v", row.Kernel.ID, row.VetRules, rule)
		}
		// These three are exactly the gap: race and builtin missed them.
		if row.Race || row.Builtin && row.Kernel.ID != "boltdb-240-chan-mutex" {
			t.Errorf("%s: expected the evaluated detectors to miss this", row.Kernel.ID)
		}
	}
}
