package core

import (
	"sort"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/report"
	"goconcbugs/internal/vet"
)

// DetectorComparison is the extension experiment this reproduction adds on
// top of the paper: all four detectors — the two the paper evaluated
// (built-in deadlock, happens-before race) and the two its Section 7
// proposes (goroutine-leak, dynamic rule enforcement) — over every
// reproduced kernel. It quantifies the detection gap the paper describes
// qualitatively: each proposed technique catches a class the evaluated
// detectors structurally cannot.
type DetectorComparison struct {
	Rows []DetectorRow
	// Totals per detector.
	Builtin, Race, Leak, Vet, Kernels int
}

// DetectorRow is one kernel's verdicts.
type DetectorRow struct {
	Kernel  kernels.Kernel
	Builtin bool
	Race    bool
	Leak    bool
	Vet     bool
	// VetRules lists the distinct rules the monitor fired.
	VetRules []vet.Rule
	// LockCycle reports whether the manifested blocking is a classic
	// circular wait in the lock wait-for graph (Section 4's deadlock vs
	// broader-blocking distinction).
	LockCycle bool
	// Stats is the per-detector accounting (events consumed, wall time)
	// summed over the kernel's instrumented passes.
	Stats []detect.Stat
}

// AnyDetected reports whether any detector caught the bug.
func (r DetectorRow) AnyDetected() bool { return r.Builtin || r.Race || r.Leak || r.Vet }

// CompareDetectors runs the full cross product through the detect pipeline.
// Blocking kernels run once with ALL four detectors (plus the circularity
// analysis) sharing a single instrumented pass — they trigger
// deterministically; non-blocking kernels sweep s.Runs seeds with the race
// detector and the rule checker attached to every run's one event stream.
func (s *Study) CompareDetectors() *DetectorComparison {
	out := &DetectorComparison{}
	blockingSet := []detect.Detector{
		detect.MustLookup("builtin"), detect.MustLookup("leak"),
		detect.MustLookup("cycle"), detect.MustLookup("vet"),
	}
	sweepSet := []detect.Detector{detect.MustLookup("race"), detect.MustLookup("vet")}
	for _, k := range kernels.All() {
		if !k.InDetectorStudy && k.Figure == 0 {
			continue
		}
		row := DetectorRow{Kernel: k}
		rules := map[vet.Rule]bool{}
		switch k.Behavior {
		case corpus.Blocking:
			rep := detect.RunAll(k.Config(s.BaseSeed), k.Buggy, blockingSet...)
			row.Builtin = rep.Verdict("builtin").Detected
			row.Leak = rep.Verdict("leak").Detected || row.Builtin
			row.LockCycle = rep.Verdict("cycle").Detected
			row.Stats = rep.Stats
			for _, r := range rep.Verdict("vet").Rules {
				rules[vet.Rule(r)] = true
			}
			// Blocking kernels trigger deterministically, but a rule can be
			// schedule-dependent: when the base-seed pass stays quiet, sweep
			// the remaining seeds until the checker fires.
			for i := 1; i < s.runs() && len(rules) == 0; i++ {
				m, _ := vet.Check(k.Config(s.BaseSeed+int64(i)), k.Buggy)
				for _, v := range m.Violations() {
					rules[v.Rule] = true
				}
			}
		case corpus.NonBlocking:
			sw := detect.Sweep(k.Buggy, detect.SweepOptions{
				Runs: s.runs(), BaseSeed: s.BaseSeed, Config: k.Config(s.BaseSeed),
			}, sweepSet...)
			row.Race = sw.Stat("race").Detected()
			for _, st := range sw.Detectors {
				row.Stats = append(row.Stats, detect.Stat{
					Detector: st.Detector, Events: st.Events, Elapsed: st.Elapsed,
				})
			}
			for _, r := range sw.Stat("vet").Rules {
				rules[vet.Rule(r)] = true
			}
		}
		for r := range rules {
			row.VetRules = append(row.VetRules, r)
		}
		sort.Slice(row.VetRules, func(i, j int) bool { return row.VetRules[i] < row.VetRules[j] })
		row.Vet = len(rules) > 0
		out.Rows = append(out.Rows, row)
		out.Kernels++
		if row.Builtin {
			out.Builtin++
		}
		if row.Race {
			out.Race++
		}
		if row.Leak {
			out.Leak++
		}
		if row.Vet {
			out.Vet++
		}
	}
	return out
}

// DetectorComparisonTable renders the comparison.
func (s *Study) DetectorComparisonTable() (*report.Table, *DetectorComparison) {
	cmp := s.CompareDetectors()
	t := &report.Table{
		Title:  "Extension: detector comparison over the reproduced kernels",
		Header: []string{"Kernel", "Behavior", "builtin", "race", "leak", "vet", "shape"},
		Note:   "builtin+race are the paper's evaluated detectors; leak+vet implement its Section 7 proposals",
	}
	mark := func(b bool) string {
		if b {
			return "X"
		}
		return "-"
	}
	for _, r := range cmp.Rows {
		shape := ""
		if r.Kernel.Behavior == corpus.Blocking {
			shape = "non-circular"
			if r.LockCycle {
				shape = "lock-cycle"
			}
		}
		t.AddRow(r.Kernel.ID, string(r.Kernel.Behavior),
			mark(r.Builtin), mark(r.Race), mark(r.Leak), mark(r.Vet), shape)
	}
	t.AddRow("Total", report.Itoa(cmp.Kernels),
		report.Itoa(cmp.Builtin), report.Itoa(cmp.Race),
		report.Itoa(cmp.Leak), report.Itoa(cmp.Vet), "")
	return t, cmp
}
