package core

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/report"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// DetectorComparison is the extension experiment this reproduction adds on
// top of the paper: all four detectors — the two the paper evaluated
// (built-in deadlock, happens-before race) and the two its Section 7
// proposes (goroutine-leak, dynamic rule enforcement) — over every
// reproduced kernel. It quantifies the detection gap the paper describes
// qualitatively: each proposed technique catches a class the evaluated
// detectors structurally cannot.
type DetectorComparison struct {
	Rows []DetectorRow
	// Totals per detector.
	Builtin, Race, Leak, Vet, Kernels int
}

// DetectorRow is one kernel's verdicts.
type DetectorRow struct {
	Kernel  kernels.Kernel
	Builtin bool
	Race    bool
	Leak    bool
	Vet     bool
	// VetRules lists the distinct rules the monitor fired.
	VetRules []vet.Rule
	// LockCycle reports whether the manifested blocking is a classic
	// circular wait in the lock wait-for graph (Section 4's deadlock vs
	// broader-blocking distinction).
	LockCycle bool
}

// AnyDetected reports whether any detector caught the bug.
func (r DetectorRow) AnyDetected() bool { return r.Builtin || r.Race || r.Leak || r.Vet }

// CompareDetectors runs the full cross product. Blocking kernels run once
// (they trigger deterministically); non-blocking kernels run s.Runs seeds
// under the race detector and the rule checker.
func (s *Study) CompareDetectors() *DetectorComparison {
	out := &DetectorComparison{}
	for _, k := range kernels.All() {
		if !k.InDetectorStudy && k.Figure == 0 {
			continue
		}
		row := DetectorRow{Kernel: k}
		switch k.Behavior {
		case corpus.Blocking:
			res := sim.Run(k.Config(s.BaseSeed), k.Buggy)
			row.Builtin = deadlock.Builtin{}.Detect(res).Detected
			row.Leak = deadlock.Leak{}.Detect(res).Detected || row.Builtin
			row.LockCycle = deadlock.AnalyzeCircularity(res).CircularWait
		case corpus.NonBlocking:
			st := explore.Run(k.Buggy, explore.Options{
				Runs: s.runs(), BaseSeed: s.BaseSeed, Config: k.Config(s.BaseSeed), WithRace: true,
			})
			row.Race = st.Detected()
		}
		rules := map[vet.Rule]bool{}
		for i := 0; i < s.runs(); i++ {
			m, _ := vet.Check(k.Config(s.BaseSeed+int64(i)), k.Buggy)
			for _, v := range m.Violations() {
				rules[v.Rule] = true
			}
			if len(rules) > 0 && k.Behavior == corpus.Blocking {
				break // deterministic; no need to sweep further
			}
		}
		for r := range rules {
			row.VetRules = append(row.VetRules, r)
		}
		row.Vet = len(rules) > 0
		out.Rows = append(out.Rows, row)
		out.Kernels++
		if row.Builtin {
			out.Builtin++
		}
		if row.Race {
			out.Race++
		}
		if row.Leak {
			out.Leak++
		}
		if row.Vet {
			out.Vet++
		}
	}
	return out
}

// DetectorComparisonTable renders the comparison.
func (s *Study) DetectorComparisonTable() (*report.Table, *DetectorComparison) {
	cmp := s.CompareDetectors()
	t := &report.Table{
		Title:  "Extension: detector comparison over the reproduced kernels",
		Header: []string{"Kernel", "Behavior", "builtin", "race", "leak", "vet", "shape"},
		Note:   "builtin+race are the paper's evaluated detectors; leak+vet implement its Section 7 proposals",
	}
	mark := func(b bool) string {
		if b {
			return "X"
		}
		return "-"
	}
	for _, r := range cmp.Rows {
		shape := ""
		if r.Kernel.Behavior == corpus.Blocking {
			shape = "non-circular"
			if r.LockCycle {
				shape = "lock-cycle"
			}
		}
		t.AddRow(r.Kernel.ID, string(r.Kernel.Behavior),
			mark(r.Builtin), mark(r.Race), mark(r.Leak), mark(r.Vet), shape)
	}
	t.AddRow("Total", report.Itoa(cmp.Kernels),
		report.Itoa(cmp.Builtin), report.Itoa(cmp.Race),
		report.Itoa(cmp.Leak), report.Itoa(cmp.Vet), "")
	return t, cmp
}
