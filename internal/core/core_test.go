package core

import (
	"path/filepath"
	"strings"
	"testing"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/static"
)

func testStudy() *Study {
	s := NewStudy()
	s.Runs = 40 // enough for the rare-path races, fast enough for CI
	s.SourceRoot = filepath.Join("..", "..", "testdata", "apps")
	return s
}

func TestTable5RendersTotals(t *testing.T) {
	out := testStudy().Table5().String()
	if !strings.Contains(out, "Total") || !strings.Contains(out, "85") ||
		!strings.Contains(out, "86") || !strings.Contains(out, "105") || !strings.Contains(out, "66") {
		t.Fatalf("Table 5 missing totals:\n%s", out)
	}
}

func TestTable6ColumnTotals(t *testing.T) {
	out := testStudy().Table6().String()
	for _, want := range []string{"28", "29", "16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 6 missing %s:\n%s", want, out)
		}
	}
}

func TestTable7Lifts(t *testing.T) {
	_, lifts := testStudy().Table7()
	if len(lifts) == 0 {
		t.Fatal("no lifts")
	}
	top := lifts[0]
	if top.Row != string(corpus.BCMutex) || top.Col != string(corpus.MoveSync) {
		t.Fatalf("top lift = %s->%s (%.2f), want Mutex->Move_s ≈1.52", top.Row, top.Col, top.Lift)
	}
	if top.Lift < 1.45 || top.Lift > 1.60 {
		t.Fatalf("lift(Mutex, Move_s) = %.3f, want ≈1.52", top.Lift)
	}
	second := lifts[1]
	if second.Row != string(corpus.BCChan) || second.Col != string(corpus.AddSync) {
		t.Fatalf("second lift = %s->%s (%.2f), want Chan->Add_s ≈1.42", second.Row, second.Col, second.Lift)
	}
	if second.Lift < 1.30 || second.Lift > 1.50 {
		t.Fatalf("lift(Chan, Add_s) = %.3f, want ≈1.42", second.Lift)
	}
	for _, e := range lifts[2:] {
		if e.Lift > 1.20 {
			t.Fatalf("unexpected strong correlation %s->%s = %.2f (paper: all others < 1.16)",
				e.Row, e.Col, e.Lift)
		}
	}
}

func TestTable10And11Lifts(t *testing.T) {
	s := testStudy()
	_, strategyLifts := s.Table10()
	foundAnonPrivate, foundChanMove := 0.0, 0.0
	for _, e := range strategyLifts {
		if e.Row == string(corpus.NBAnonymous) && e.Col == string(corpus.DataPrivate) {
			foundAnonPrivate = e.Lift
		}
		if e.Row == string(corpus.NBChan) && e.Col == string(corpus.MoveSync) {
			foundChanMove = e.Lift
		}
	}
	if foundAnonPrivate < 2.0 || foundAnonPrivate > 2.5 {
		t.Errorf("lift(anonymous, Private) = %.2f, want ≈2.23", foundAnonPrivate)
	}
	if foundChanMove < 2.0 || foundChanMove > 2.4 {
		t.Errorf("lift(chan, Move_s) = %.2f, want ≈2.21", foundChanMove)
	}
	_, primLifts := s.Table11()
	foundChanChan := 0.0
	for _, e := range primLifts {
		if e.Row == string(corpus.NBChan) && e.Col == string(corpus.FPChannel) {
			foundChanChan = e.Lift
		}
	}
	if foundChanChan < 2.4 || foundChanChan > 3.0 {
		t.Errorf("lift(chan, Channel) = %.2f, want ≈2.7", foundChanChan)
	}
}

func TestTable8MatchesPaper(t *testing.T) {
	_, res := testStudy().Table8()
	if len(res.Verdicts) != 21 {
		t.Fatalf("used %d kernels, want 21", len(res.Verdicts))
	}
	if res.BuiltinDetected != 2 {
		t.Fatalf("builtin detected %d, want 2 (BoltDB#392, BoltDB#240)", res.BuiltinDetected)
	}
	if res.LeakDetected != 21 {
		t.Fatalf("leak detector (ablation) found %d, want all 21", res.LeakDetected)
	}
	for _, v := range res.Verdicts {
		if v.Builtin != v.PaperBuiltin {
			t.Errorf("%s: builtin=%v, paper says %v", v.Kernel.ID, v.Builtin, v.PaperBuiltin)
		}
	}
}

func TestTable12MatchesPaper(t *testing.T) {
	_, res := testStudy().Table12()
	if len(res.Verdicts) != 20 {
		t.Fatalf("used %d kernels, want 20", len(res.Verdicts))
	}
	if res.TotalDetected != 10 {
		t.Fatalf("detected %d, want 10", res.TotalDetected)
	}
	pc := res.PerCause[corpus.NBTraditional]
	if pc[0] != 13 || pc[1] != 7 {
		t.Fatalf("traditional %d/%d, want 13 used / 7 detected", pc[0], pc[1])
	}
	pc = res.PerCause[corpus.NBAnonymous]
	if pc[0] != 4 || pc[1] != 3 {
		t.Fatalf("anonymous %d/%d, want 4 used / 3 detected", pc[0], pc[1])
	}
	if res.Rare == 0 {
		t.Errorf("expected some bugs detected only in a minority of runs (the paper's 'around 100 runs were needed')")
	}
	if res.EveryRun == 0 {
		t.Errorf("expected some bugs detected on every run")
	}
}

func TestTable2And4OverMiniApps(t *testing.T) {
	s := testStudy()
	if _, err := s.Table2(); err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if _, err := s.Table4(); err != nil {
		t.Fatalf("Table4: %v", err)
	}
	// Qualitative shape checks on the mini-apps.
	for _, app := range corpus.Apps {
		m, err := s.MeasureApp(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if m.GoStmts == 0 {
			t.Errorf("%s: no goroutine creation sites", app)
		}
		anonDominates := m.GoAnon > m.GoNamed
		wantAnon := app != corpus.Kubernetes && app != corpus.BoltDB
		if anonDominates != wantAnon {
			t.Errorf("%s: anon=%d named=%d; paper says anon>named is %v",
				app, m.GoAnon, m.GoNamed, wantAnon)
		}
		if m.Share(static.PrimMutex) < m.Share(static.PrimAtomic) {
			t.Errorf("%s: Mutex share below atomic share", app)
		}
		if m.ShareOf(static.SharedMemoryPrimitives) <= m.ShareOf(static.MessagePassingPrimitives) &&
			app != corpus.Etcd {
			t.Errorf("%s: shared-memory share should dominate (got %.2f vs %.2f)",
				app, m.ShareOf(static.SharedMemoryPrimitives), m.ShareOf(static.MessagePassingPrimitives))
		}
	}
	// etcd is the channel-heaviest tree, as in Table 4.
	etcd, _ := s.MeasureApp(corpus.Etcd)
	for _, app := range corpus.Apps {
		if app == corpus.Etcd {
			continue
		}
		m, _ := s.MeasureApp(app)
		if m.Share(static.PrimChan) > etcd.Share(static.PrimChan) {
			t.Errorf("%s chan share %.2f exceeds etcd's %.2f", app, m.Share(static.PrimChan), etcd.Share(static.PrimChan))
		}
	}
}

func TestSection7DetectorFindsSeededBugs(t *testing.T) {
	findings, err := testStudy().Section7Detector()
	if err != nil {
		t.Fatal(err)
	}
	var loopVar, writtenAfter bool
	for _, f := range findings {
		if strings.Contains(f.File, "docker") && f.Reason == "loop variable" {
			loopVar = true
		}
		if strings.Contains(f.File, "grpc") && f.Reason == "written after go" {
			writtenAfter = true
		}
	}
	if !loopVar {
		t.Errorf("detector missed the seeded Figure 8 loop-variable bug; findings: %v", findings)
	}
	if !writtenAfter {
		t.Errorf("detector missed the seeded written-after-go bug; findings: %v", findings)
	}
}

func TestFigure4Shape(t *testing.T) {
	medians := testStudy().LifetimeMedians()
	for cause, m := range medians {
		if m < 120 {
			t.Errorf("%s median lifetime %.0f days; Figure 4 shows long lifetimes", cause, m)
		}
	}
	fig := testStudy().Figure4()
	if len(fig.Series) != 2 {
		t.Fatalf("Figure 4 needs two series, got %d", len(fig.Series))
	}
}

func TestFigures2And3Stable(t *testing.T) {
	figs := testStudy().Figure2and3()
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 6 {
			t.Fatalf("%s: want 6 series, got %d", fig.Title, len(fig.Series))
		}
	}
}

func TestObservationsHold(t *testing.T) {
	for _, o := range testStudy().Observations() {
		if !o.Holds {
			t.Errorf("Observation %d does not hold: %s (%s)", o.Number, o.Claim, o.Detail)
		}
	}
}
