package core

import "testing"

// TestGRPCContrast pins the Section 3 gRPC-Go vs gRPC-C shape on the two
// measured trees: "gRPC-C has surprisingly very few threads creation" and
// "gRPC-Go uses a larger amount of and a larger variety of concurrency
// primitives than gRPC-C" (which "only uses lock").
func TestGRPCContrast(t *testing.T) {
	c, err := testStudy().MeasureGRPCContrast()
	if err != nil {
		t.Fatal(err)
	}
	if c.CStyle.GoStmts != 1 {
		t.Errorf("C-style tree has %d creation sites, want exactly 1 (the pool spawn)", c.CStyle.GoStmts)
	}
	if c.CreationDensityRatio <= 2 {
		t.Errorf("creation density ratio = %.1f, want the Go style well above the C style", c.CreationDensityRatio)
	}
	if c.GoVariety <= c.CVariety {
		t.Errorf("primitive variety: Go %d vs C %d; the paper found Go uses more kinds", c.GoVariety, c.CVariety)
	}
	if c.CChanShare != 0 {
		t.Errorf("C-style tree uses channels (share %.2f); gRPC-C 'only uses lock'", c.CChanShare)
	}
	if c.GoChanShare == 0 {
		t.Errorf("Go-style tree uses no channels")
	}
	if c.CStyle.GoAnon != 0 {
		t.Errorf("C-style tree spawns anonymous goroutines (%d)", c.CStyle.GoAnon)
	}
}
