package core

import (
	"fmt"
	"path/filepath"
	"time"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/evolution"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/report"
	"goconcbugs/internal/rpc"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/static"
)

// KernelVerdict is one kernel's detector outcome in the Table 8 experiment.
type KernelVerdict struct {
	Kernel       kernels.Kernel
	Builtin      bool // built-in detector reported
	Leak         bool // leak detector reported
	Outcome      sim.Outcome
	LeakedCount  int
	PaperBuiltin bool
	// Stats is the per-detector accounting of the kernel's single
	// instrumented pass.
	Stats []detect.Stat
}

// Table8Result is the full deadlock-detector experiment.
type Table8Result struct {
	Verdicts        []KernelVerdict
	BuiltinDetected int
	LeakDetected    int
	PerCause        map[deadlock.BlockClass][2]int // used, builtin-detected
}

// Table8 runs the 21 blocking kernels once each (every blocking kernel
// triggers deterministically, as in the paper: "for each bug, we only ran
// it once") under the built-in detector model, with the leak detector as
// the Implication 4 ablation. Both detectors share the kernel's single
// instrumented pass through the detect pipeline.
func (s *Study) Table8() (*report.Table, *Table8Result) {
	res := &Table8Result{PerCause: map[deadlock.BlockClass][2]int{}}
	dets := []detect.Detector{detect.MustLookup("builtin"), detect.MustLookup("leak")}
	for _, k := range kernels.DeadlockStudySet() {
		rep := detect.RunAll(k.Config(s.BaseSeed), k.Buggy, dets...)
		r := rep.Result
		builtin := rep.Verdict("builtin")
		leak := rep.Verdict("leak")
		v := KernelVerdict{
			Kernel: k, Builtin: builtin.Detected, Leak: leak.Detected,
			Outcome: r.Outcome, LeakedCount: len(r.Leaked), PaperBuiltin: k.ExpectBuiltinDetect,
			Stats: rep.Stats,
		}
		res.Verdicts = append(res.Verdicts, v)
		pc := res.PerCause[k.BlockClass]
		pc[0]++
		if builtin.Detected {
			pc[1]++
			res.BuiltinDetected++
		}
		if leak.Detected || builtin.Detected {
			res.LeakDetected++
		}
		res.PerCause[k.BlockClass] = pc
	}
	t := &report.Table{
		Title:  "Table 8: Built-in deadlock detector on the 21 reproduced blocking bugs",
		Header: []string{"Root Cause", "# Used (paper)", "# Detected (paper)", "# Used (ours)", "# Detected (ours)", "leak detector (ablation)"},
	}
	leakPer := map[deadlock.BlockClass]int{}
	for _, v := range res.Verdicts {
		if v.Leak || v.Builtin {
			leakPer[v.Kernel.BlockClass]++
		}
	}
	for _, row := range corpus.Table8Paper() {
		cls := deadlock.BlockClass(row.Cause)
		pc := res.PerCause[cls]
		t.AddRow(row.Cause, report.Itoa(row.Used), report.Itoa(row.Detected),
			report.Itoa(pc[0]), report.Itoa(pc[1]), report.Itoa(leakPer[cls]))
	}
	t.AddRow("Total", "21", "2", report.Itoa(len(res.Verdicts)),
		report.Itoa(res.BuiltinDetected), report.Itoa(res.LeakDetected))
	return t, res
}

// RaceVerdict is one kernel's outcome in the Table 12 experiment.
type RaceVerdict struct {
	Kernel        kernels.Kernel
	Detected      bool
	DetectedRuns  int
	Runs          int
	PaperDetected bool
	// Stats is the race detector's aggregate accounting over the sweep
	// (events consumed, time spent).
	Stats detect.SweepStat
}

// Table12Result is the full race-detector experiment.
type Table12Result struct {
	Verdicts      []RaceVerdict
	TotalDetected int
	PerCause      map[corpus.NonBlockingCause][2]int // used, detected
	// EveryRun counts detected kernels flagged on all runs; Rare counts
	// those needing many runs — the paper's "for six of these successes,
	// the data race detector reported bugs on every run, while for the
	// rest four, around 100 runs were needed".
	EveryRun, Rare int
}

// Table12 runs the 20 non-blocking kernels s.Runs times each under the race
// detector ("We ran each buggy program 100 times with the race detector
// turned on"), one instrumented pass per seed through the detect pipeline.
func (s *Study) Table12() (*report.Table, *Table12Result) {
	res := &Table12Result{PerCause: map[corpus.NonBlockingCause][2]int{}}
	raceDet := detect.MustLookup("race")
	for _, k := range kernels.RaceStudySet() {
		sw := detect.Sweep(k.Buggy, detect.SweepOptions{
			Runs: s.runs(), BaseSeed: s.BaseSeed, Config: k.Config(s.BaseSeed),
			Workers: -1, // deterministic fold; just faster
		}, raceDet)
		st := sw.Stat("race")
		v := RaceVerdict{
			Kernel: k, Detected: st.Detected(), DetectedRuns: st.DetectedRuns,
			Runs: sw.Runs, PaperDetected: k.ExpectRaceDetect, Stats: st,
		}
		res.Verdicts = append(res.Verdicts, v)
		pc := res.PerCause[k.NBCause]
		pc[0]++
		if v.Detected {
			pc[1]++
			res.TotalDetected++
			if v.DetectedRuns == v.Runs {
				res.EveryRun++
			} else {
				res.Rare++
			}
		}
		res.PerCause[k.NBCause] = pc
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Table 12: Data race detector on the 20 reproduced non-blocking bugs (%d runs each)", s.runs()),
		Header: []string{"Root Cause", "# Used (paper)", "# Detected (paper)", "# Used (ours)", "# Detected (ours)"},
	}
	for _, row := range corpus.Table12Paper() {
		cause := corpus.NonBlockingCause(row.Cause)
		pc := res.PerCause[cause]
		t.AddRow(row.Cause, report.Itoa(row.Used), report.Itoa(row.Detected),
			report.Itoa(pc[0]), report.Itoa(pc[1]))
	}
	t.AddRow("Total", "20", "10", report.Itoa(len(res.Verdicts)), report.Itoa(res.TotalDetected))
	return t, res
}

// Table2 runs the goroutine-creation-site analysis over the application
// trees under SourceRoot and prints them next to the paper's rows.
func (s *Study) Table2() (*report.Table, error) {
	t := &report.Table{
		Title: "Table 2: Goroutine creation sites (paper vs measured mini-apps)",
		Header: []string{"Application", "paper sites/KLOC", "paper anon>named",
			"measured sites", "measured sites/KLOC", "measured anon", "measured named"},
		Note: "measured columns come from the synthetic trees under testdata/apps (see DESIGN.md §3)",
	}
	for _, row := range corpus.Table2Paper() {
		m, err := static.Analyze(filepath.Join(s.SourceRoot, dirOf(row.App)))
		if err != nil {
			return nil, err
		}
		t.AddRow(string(row.App),
			fmt.Sprintf("%.2f", row.PerKLOC),
			fmt.Sprintf("%v", row.AnonSites > row.NamedSites),
			report.Itoa(m.GoStmts),
			fmt.Sprintf("%.2f", m.GoPerKLOC()),
			report.Itoa(m.GoAnon),
			report.Itoa(m.GoNamed))
	}
	t.AddRow("gRPC-C (paper)", fmt.Sprintf("%.2f", corpus.GRPCCPerKLOC), "false",
		report.Itoa(corpus.GRPCCCreationSites), fmt.Sprintf("%.2f", corpus.GRPCCPerKLOC), "0", "5")
	// The measured contrast: the same transport domain written C-style
	// (testdata/apps/grpcc) through the same analyzer.
	if m, err := static.Analyze(filepath.Join(s.SourceRoot, "grpcc")); err == nil {
		t.AddRow("gRPC-C-style tree", "-", "false",
			report.Itoa(m.GoStmts),
			fmt.Sprintf("%.2f", m.GoPerKLOC()),
			report.Itoa(m.GoAnon),
			report.Itoa(m.GoNamed))
	}
	return t, nil
}

// GRPCContrast measures the Section 3.1/3.2 gRPC-Go vs gRPC-C static
// contrast over the two transport trees: the Go-style tree should have more
// creation sites per KLOC and a wider primitive variety than the C-style
// tree, which uses locks (and condition variables) only.
type GRPCContrast struct {
	GoStyle, CStyle           static.Metrics
	GoVariety, CVariety       int // distinct primitive kinds in use
	GoChanShare, CChanShare   float64
	CreationDensityRatio      float64
	PrimitiveUsageDifferRatio float64
}

// MeasureGRPCContrast runs the analyzer over both transport trees.
func (s *Study) MeasureGRPCContrast() (GRPCContrast, error) {
	goM, err := static.Analyze(filepath.Join(s.SourceRoot, "grpc"))
	if err != nil {
		return GRPCContrast{}, err
	}
	cM, err := static.Analyze(filepath.Join(s.SourceRoot, "grpcc"))
	if err != nil {
		return GRPCContrast{}, err
	}
	variety := func(m static.Metrics) int {
		n := 0
		for _, p := range static.Primitives {
			if m.Primitives[p] > 0 {
				n++
			}
		}
		return n
	}
	out := GRPCContrast{
		GoStyle: goM, CStyle: cM,
		GoVariety: variety(goM), CVariety: variety(cM),
		GoChanShare: goM.Share(static.PrimChan), CChanShare: cM.Share(static.PrimChan),
	}
	if d := cM.GoPerKLOC(); d > 0 {
		out.CreationDensityRatio = goM.GoPerKLOC() / d
	}
	if d := cM.PrimitivesPerKLOC(); d > 0 {
		out.PrimitiveUsageDifferRatio = goM.PrimitivesPerKLOC() / d
	}
	return out, nil
}

// Table4 runs the primitive-usage analysis over the application trees.
func (s *Study) Table4() (*report.Table, error) {
	t := &report.Table{
		Title: "Table 4: Concurrency primitive usage shares (paper / measured)",
		Header: []string{"Application", "Mutex", "atomic", "Once", "WaitGroup",
			"Cond", "chan", "Misc.", "shared-vs-msg (measured)"},
	}
	paper := corpus.Table4Paper()
	for _, app := range corpus.Apps {
		m, err := static.Analyze(filepath.Join(s.SourceRoot, dirOf(app)))
		if err != nil {
			return nil, err
		}
		row := []string{string(app)}
		for _, p := range static.Primitives {
			row = append(row, fmt.Sprintf("%.0f%%/%.0f%%",
				paper[app].Shares[string(p)]*100, m.Share(p)*100))
		}
		row = append(row, fmt.Sprintf("%.0f%%:%.0f%%",
			m.ShareOf(static.SharedMemoryPrimitives)*100,
			m.ShareOf(static.MessagePassingPrimitives)*100))
		t.AddRow(row...)
	}
	return t, nil
}

// MeasureApp runs both static analyses on one application tree.
func (s *Study) MeasureApp(app corpus.App) (static.Metrics, error) {
	return static.Analyze(filepath.Join(s.SourceRoot, dirOf(app)))
}

// Table3 runs the three RPC workloads under both threading models.
func (s *Study) Table3() *report.Table {
	t := &report.Table{
		Title: "Table 3: goroutine/thread creation ratio and normalized lifetime (3 RPC workloads)",
		Header: []string{"Workload", "server ratio", "client ratio",
			"Go srv norm-life", "C srv norm-life", "Go cli norm-life",
			"Go p50/p99", "C p50/p99"},
		Note: "paper: ratios well above 1 on every workload; gRPC-C threads live 100% of the run",
	}
	for _, w := range rpc.Workloads() {
		cmp := rpc.Compare(w)
		t.AddRow(w.Name,
			fmt.Sprintf("%.1fx", cmp.ServerCreateRatio),
			fmt.Sprintf("%.1fx", cmp.ClientCreateRatio),
			report.Pct(cmp.Go.ServerNormLifetime),
			report.Pct(cmp.C.ServerNormLifetime),
			report.Pct(cmp.Go.ClientNormLifetime),
			fmt.Sprintf("%v/%v", cmp.Go.LatencyP50.Round(time.Microsecond), cmp.Go.LatencyP99.Round(time.Microsecond)),
			fmt.Sprintf("%v/%v", cmp.C.LatencyP50.Round(time.Microsecond), cmp.C.LatencyP99.Round(time.Microsecond)))
	}
	return t
}

// Figure2and3 renders the usage-share evolution for every application.
func (s *Study) Figure2and3() []*report.Figure {
	shared := &report.Figure{
		Title: "Figure 2: shared-memory primitive share over time", XLabel: "month", YLabel: "share",
	}
	msg := &report.Figure{
		Title: "Figure 3: message-passing primitive share over time", XLabel: "month", YLabel: "share",
	}
	for _, app := range corpus.Apps {
		pts := evolution.Series(app)
		var sp, mp [][2]float64
		for i, p := range pts {
			sp = append(sp, [2]float64{float64(i), p.SharedShare})
			mp = append(mp, [2]float64{float64(i), 1 - p.SharedShare})
		}
		shared.Series = append(shared.Series, report.Series{Label: string(app), Points: sp})
		msg.Series = append(msg.Series, report.Series{Label: string(app), Points: mp})
	}
	return []*report.Figure{shared, msg}
}

// Section7Detector runs the anonymous-function race detector over the
// application trees and returns the findings.
func (s *Study) Section7Detector() ([]static.AnonRaceFinding, error) {
	return static.FindAnonRaces(s.SourceRoot)
}

func dirOf(app corpus.App) string {
	switch app {
	case corpus.Docker:
		return "docker"
	case corpus.Kubernetes:
		return "kubernetes"
	case corpus.Etcd:
		return "etcd"
	case corpus.CockroachDB:
		return "cockroachdb"
	case corpus.GRPC:
		return "grpc"
	case corpus.BoltDB:
		return "boltdb"
	}
	return string(app)
}
