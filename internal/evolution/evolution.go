// Package evolution models Figures 2 and 3: the proportion of
// shared-memory and message-passing primitive usages in each application,
// per month, from February 2015 to May 2018.
//
// The paper computed these series from the applications' git histories,
// which we do not ship. What the figures establish is a *shape*: "Overall,
// the usages tend to be stable over time, which also implies that our study
// results will be valuable for future Go programmers" (Observation 2). This
// package reproduces that shape with a seeded stochastic model: each
// application's primitive mix is anchored at its Table 4 proportions and
// evolves by a small mean-reverting monthly walk (code bases drift a little
// as features land, but the synchronization style is sticky). The model's
// stability is itself asserted by tests, so the Observation 2 claim is
// checked, not assumed.
package evolution

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"goconcbugs/internal/corpus"
)

// Months spans Feb 2015 .. May 2018 inclusive, as in Figures 2 and 3.
func Months() []string {
	var out []string
	year, month := 2015, 2
	for {
		out = append(out, fmt.Sprintf("%d-%02d", year, month))
		if year == 2018 && month == 5 {
			return out
		}
		month++
		if month > 12 {
			month = 1
			year++
		}
	}
}

// Point is one month's snapshot for one application.
type Point struct {
	Month string
	// SharedShare is the proportion of shared-memory primitive usages
	// over all primitive usages (Figure 2's y value); the
	// message-passing share (Figure 3) is 1 - SharedShare.
	SharedShare float64
	// TotalPrimitives is the absolute usage count in that month's tree.
	TotalPrimitives int
}

// Series returns the monthly evolution for one application.
func Series(app corpus.App) []Point {
	anchor := anchorShare(app)
	total := anchorTotal(app)
	h := fnv.New64a()
	h.Write([]byte("evolution-" + string(app)))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	months := Months()
	out := make([]Point, 0, len(months))
	share := anchor + (rng.Float64()-0.5)*0.02
	size := float64(total) * 0.55 // repositories grow toward today's size
	for _, m := range months {
		// Mean-reverting walk: style is sticky.
		share += (anchor-share)*0.3 + (rng.Float64()-0.5)*0.02
		if share < 0.05 {
			share = 0.05
		}
		if share > 0.95 {
			share = 0.95
		}
		size *= 1 + 0.012 + (rng.Float64()-0.5)*0.01
		out = append(out, Point{Month: m, SharedShare: share, TotalPrimitives: int(size)})
	}
	return out
}

// anchorShare is the application's Table 4 shared-memory proportion.
func anchorShare(app corpus.App) float64 {
	row := corpus.Table4Paper()[app]
	shared := 0.0
	for _, p := range []string{"Mutex", "atomic", "Once", "WaitGroup", "Cond"} {
		shared += row.Shares[p]
	}
	return shared
}

func anchorTotal(app corpus.App) int {
	return corpus.Table4Paper()[app].Total
}

// Stability summarizes a series: the maximum absolute deviation from its
// mean share (Observation 2 expects this to be small).
func Stability(points []Point) (mean, maxDev float64) {
	if len(points) == 0 {
		return 0, 0
	}
	for _, p := range points {
		mean += p.SharedShare
	}
	mean /= float64(len(points))
	for _, p := range points {
		d := p.SharedShare - mean
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return mean, maxDev
}
