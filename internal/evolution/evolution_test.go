package evolution

import (
	"testing"

	"goconcbugs/internal/corpus"
)

func TestMonthsSpanFeb2015ToMay2018(t *testing.T) {
	m := Months()
	if m[0] != "2015-02" || m[len(m)-1] != "2018-05" {
		t.Fatalf("months span %s..%s", m[0], m[len(m)-1])
	}
	if len(m) != 40 {
		t.Fatalf("got %d months, want 40", len(m))
	}
}

func TestSeriesDeterministicAndComplete(t *testing.T) {
	for _, app := range corpus.Apps {
		a := Series(app)
		b := Series(app)
		if len(a) != 40 {
			t.Fatalf("%s: %d points", app, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: series not deterministic at %d", app, i)
			}
			if a[i].SharedShare < 0.05 || a[i].SharedShare > 0.95 {
				t.Fatalf("%s: share %f out of range", app, a[i].SharedShare)
			}
			if a[i].TotalPrimitives <= 0 {
				t.Fatalf("%s: non-positive total", app)
			}
		}
	}
}

// TestObservation2Stability: "the usages tend to be stable over time".
func TestObservation2Stability(t *testing.T) {
	for _, app := range corpus.Apps {
		mean, dev := Stability(Series(app))
		if dev > 0.10 {
			t.Errorf("%s: share deviates %.2f from mean %.2f; Figures 2-3 show stability", app, dev, mean)
		}
	}
}

// TestAnchoredAtTable4: each series' mean share tracks the application's
// paper-measured proportion.
func TestAnchoredAtTable4(t *testing.T) {
	for _, app := range corpus.Apps {
		mean, _ := Stability(Series(app))
		anchor := anchorShare(app)
		diff := mean - anchor
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("%s: mean share %.3f drifted from Table 4 anchor %.3f", app, mean, anchor)
		}
	}
}

// TestRepositoriesGrow: the absolute usage counts trend upward, as the
// studied repositories did over 2015-2018.
func TestRepositoriesGrow(t *testing.T) {
	for _, app := range corpus.Apps {
		pts := Series(app)
		if pts[len(pts)-1].TotalPrimitives <= pts[0].TotalPrimitives {
			t.Errorf("%s: repository shrank over the window (%d -> %d)",
				app, pts[0].TotalPrimitives, pts[len(pts)-1].TotalPrimitives)
		}
	}
}

func TestStabilityEmpty(t *testing.T) {
	mean, dev := Stability(nil)
	if mean != 0 || dev != 0 {
		t.Fatal("empty series should be (0, 0)")
	}
}
